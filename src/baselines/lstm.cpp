#include "baselines/lstm.hpp"

#include <cassert>
#include <cmath>

namespace intellog::baselines {

using common::Matrix;
using common::Vector;

LstmNetwork::LstmNetwork(std::size_t vocab, std::size_t hidden, common::Rng& rng)
    : vocab_(vocab),
      hidden_(hidden),
      w_gates_(Matrix::xavier(4 * hidden, vocab + hidden, rng)),
      b_gates_(4 * hidden, 0.0),
      w_out_(Matrix::xavier(vocab, hidden, rng)),
      b_out_(vocab, 0.0),
      m_wg_(4 * hidden, vocab + hidden),
      v_wg_(4 * hidden, vocab + hidden),
      m_wo_(vocab, hidden),
      v_wo_(vocab, hidden),
      m_bg_(4 * hidden, 0.0),
      v_bg_(4 * hidden, 0.0),
      m_bo_(vocab, 0.0),
      v_bo_(vocab, 0.0) {
  // Forget-gate bias init at 1.0 stabilizes early training.
  for (std::size_t i = hidden; i < 2 * hidden; ++i) b_gates_[i] = 1.0;
}

LstmNetwork::StepState LstmNetwork::initial_state() const {
  return {Vector(hidden_, 0.0), Vector(hidden_, 0.0)};
}

struct LstmNetwork::StepCache {
  std::size_t symbol;
  Vector h_prev, c_prev;
  Vector gates;  // 4H pre/post activations (post, gate-activated)
  Vector c, h;
  Vector probs;
};

namespace {

/// z = W [onehot(sym); h_prev] + b, exploiting the one-hot column.
void gates_forward(const Matrix& w, const Vector& b, std::size_t sym, const Vector& h_prev,
                   Vector& z) {
  const std::size_t rows = w.rows();
  const std::size_t hidden = h_prev.size();
  const std::size_t vocab = w.cols() - hidden;
  z = b;
  for (std::size_t r = 0; r < rows; ++r) {
    const double* wr = w.row(r);
    double acc = wr[sym];  // one-hot input column
    const double* wh = wr + vocab;
    for (std::size_t k = 0; k < hidden; ++k) acc += wh[k] * h_prev[k];
    z[r] += acc;
  }
}

}  // namespace

Vector LstmNetwork::step(std::size_t symbol, StepState& state) const {
  assert(symbol < vocab_);
  Vector z;
  gates_forward(w_gates_, b_gates_, symbol, state.h, z);
  const std::size_t H = hidden_;
  Vector c_new(H), h_new(H);
  for (std::size_t k = 0; k < H; ++k) {
    const double i = common::sigmoid(z[k]);
    const double f = common::sigmoid(z[H + k]);
    const double g = std::tanh(z[2 * H + k]);
    const double o = common::sigmoid(z[3 * H + k]);
    c_new[k] = f * state.c[k] + i * g;
    h_new[k] = o * std::tanh(c_new[k]);
  }
  state.c = std::move(c_new);
  state.h = std::move(h_new);
  Vector logits;
  common::matvec(w_out_, state.h, logits);
  common::add_inplace(logits, b_out_);
  common::softmax(logits);
  return logits;
}

double LstmNetwork::train_window(const std::vector<std::size_t>& symbols, double lr) {
  if (symbols.size() < 2) return 0.0;
  const std::size_t H = hidden_;
  const std::size_t V = vocab_;
  const std::size_t steps = symbols.size() - 1;

  // ---- forward with caches ----
  std::vector<StepCache> caches(steps);
  Vector h(H, 0.0), c(H, 0.0);
  double loss = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    StepCache& cc = caches[t];
    cc.symbol = symbols[t];
    cc.h_prev = h;
    cc.c_prev = c;
    Vector z;
    gates_forward(w_gates_, b_gates_, cc.symbol, h, z);
    cc.gates.assign(4 * H, 0.0);
    Vector c_new(H), h_new(H);
    for (std::size_t k = 0; k < H; ++k) {
      const double i = common::sigmoid(z[k]);
      const double f = common::sigmoid(z[H + k]);
      const double g = std::tanh(z[2 * H + k]);
      const double o = common::sigmoid(z[3 * H + k]);
      cc.gates[k] = i;
      cc.gates[H + k] = f;
      cc.gates[2 * H + k] = g;
      cc.gates[3 * H + k] = o;
      c_new[k] = f * c[k] + i * g;
      h_new[k] = o * std::tanh(c_new[k]);
    }
    cc.c = c_new;
    cc.h = h_new;
    c = std::move(c_new);
    h = std::move(h_new);
    Vector logits;
    common::matvec(w_out_, h, logits);
    common::add_inplace(logits, b_out_);
    common::softmax(logits);
    cc.probs = logits;
    const double p = std::max(logits[symbols[t + 1]], 1e-12);
    loss -= std::log(p);
  }

  // ---- backward (BPTT) ----
  Matrix g_wg(4 * H, V + H), g_wo(V, H);
  Vector g_bg(4 * H, 0.0), g_bo(V, 0.0);
  Vector dh_next(H, 0.0), dc_next(H, 0.0);
  for (std::size_t ti = steps; ti-- > 0;) {
    const StepCache& cc = caches[ti];
    // Output layer: dlogits = probs - onehot(target)
    Vector dlogits = cc.probs;
    dlogits[symbols[ti + 1]] -= 1.0;
    common::outer_acc(g_wo, dlogits, cc.h);
    common::add_inplace(g_bo, dlogits);
    Vector dh;
    common::matvec_transpose(w_out_, dlogits, dh);
    common::add_inplace(dh, dh_next);

    Vector dz(4 * H, 0.0);
    Vector dc(H, 0.0);
    for (std::size_t k = 0; k < H; ++k) {
      const double i = cc.gates[k], f = cc.gates[H + k], g = cc.gates[2 * H + k],
                   o = cc.gates[3 * H + k];
      const double tanh_c = std::tanh(cc.c[k]);
      const double do_ = dh[k] * tanh_c;
      double dck = dh[k] * o * (1.0 - tanh_c * tanh_c) + dc_next[k];
      const double di = dck * g;
      const double dg = dck * i;
      const double df = dck * cc.c_prev[k];
      dc[k] = dck * f;
      dz[k] = di * i * (1.0 - i);
      dz[H + k] = df * f * (1.0 - f);
      dz[2 * H + k] = dg * (1.0 - g * g);
      dz[3 * H + k] = do_ * o * (1.0 - o);
    }
    // Accumulate gate-weight gradients: g_wg += dz [onehot; h_prev]^T
    for (std::size_t r = 0; r < 4 * H; ++r) {
      const double d = dz[r];
      if (d == 0.0) continue;
      double* row = g_wg.row(r);
      row[cc.symbol] += d;
      double* rowh = row + V;
      for (std::size_t k = 0; k < H; ++k) rowh[k] += d * cc.h_prev[k];
    }
    common::add_inplace(g_bg, dz);
    // dh_prev = W_h^T dz
    Vector dh_prev(H, 0.0);
    for (std::size_t r = 0; r < 4 * H; ++r) {
      const double d = dz[r];
      if (d == 0.0) continue;
      const double* rowh = w_gates_.row(r) + V;
      for (std::size_t k = 0; k < H; ++k) dh_prev[k] += d * rowh[k];
    }
    dh_next = std::move(dh_prev);
    dc_next = std::move(dc);
  }

  const double scale = 1.0 / static_cast<double>(steps);
  g_wg *= scale;
  g_wo *= scale;
  for (auto& x : g_bg) x *= scale;
  for (auto& x : g_bo) x *= scale;
  g_wg.clip_norm(5.0);
  g_wo.clip_norm(5.0);

  ++adam_t_;
  adam_update(w_gates_, g_wg, m_wg_, v_wg_, lr);
  adam_update(w_out_, g_wo, m_wo_, v_wo_, lr);
  adam_update_vec(b_gates_, g_bg, m_bg_, v_bg_, lr);
  adam_update_vec(b_out_, g_bo, m_bo_, v_bo_, lr);
  return loss / static_cast<double>(steps);
}

void LstmNetwork::adam_update(Matrix& p, Matrix& g, Matrix& m, Matrix& v, double lr) {
  constexpr double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(adam_t_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(adam_t_));
  for (std::size_t i = 0; i < p.size(); ++i) {
    m.data()[i] = b1 * m.data()[i] + (1 - b1) * g.data()[i];
    v.data()[i] = b2 * v.data()[i] + (1 - b2) * g.data()[i] * g.data()[i];
    const double mhat = m.data()[i] / bc1;
    const double vhat = v.data()[i] / bc2;
    p.data()[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void LstmNetwork::adam_update_vec(Vector& p, Vector& g, Vector& m, Vector& v, double lr) {
  constexpr double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  const double bc1 = 1.0 - std::pow(b1, static_cast<double>(adam_t_));
  const double bc2 = 1.0 - std::pow(b2, static_cast<double>(adam_t_));
  for (std::size_t i = 0; i < p.size(); ++i) {
    m[i] = b1 * m[i] + (1 - b1) * g[i];
    v[i] = b2 * v[i] + (1 - b2) * g[i] * g[i];
    p[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
  }
}

}  // namespace intellog::baselines
