// LogCluster baseline (Lin et al., ICSE'16) for the Table-8 comparison.
//
// Sessions become IDF-weighted log-key vectors; agglomerative clustering
// over cosine similarity builds a knowledge base from normal runs. At
// detection time a session whose nearest knowledge-base cluster falls
// below the similarity threshold represents a previously-unseen pattern
// and is surfaced (with a representative) for the operator to examine.
// LogCluster reduces examination effort; it does not claim to catch every
// problem — which is why the paper reports its recall as N/A.
#pragma once

#include <map>
#include <vector>

namespace intellog::baselines {

class LogCluster {
 public:
  struct Config {
    double similarity_threshold = 0.6;  ///< cosine; below = new pattern
  };

  LogCluster() : LogCluster(Config{}) {}
  explicit LogCluster(Config config);

  /// Builds the knowledge base from normal-execution sessions (log-key id
  /// sequences).
  void train(const std::vector<std::vector<int>>& sequences);

  /// True when the session does not fall into any knowledge-base cluster.
  bool is_new_pattern(const std::vector<int>& sequence) const;

  /// Highest cosine similarity to the knowledge base (diagnostics).
  double best_similarity(const std::vector<int>& sequence) const;

  std::size_t cluster_count() const { return centroids_.size(); }

 private:
  using SparseVec = std::map<int, double>;  ///< key id -> weight
  SparseVec vectorize(const std::vector<int>& sequence) const;
  static double cosine(const SparseVec& a, const SparseVec& b);

  Config config_;
  std::map<int, double> idf_;  ///< key id -> inverse document frequency
  std::size_t documents_ = 0;
  std::vector<SparseVec> centroids_;
  std::vector<std::size_t> cluster_sizes_;
};

}  // namespace intellog::baselines
