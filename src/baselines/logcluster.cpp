#include "baselines/logcluster.hpp"

#include <cmath>

namespace intellog::baselines {

LogCluster::LogCluster(Config config) : config_(config) {}

LogCluster::SparseVec LogCluster::vectorize(const std::vector<int>& sequence) const {
  SparseVec counts;
  for (const int k : sequence) counts[k] += 1.0;
  // Weight: log(1+tf) * idf. Unknown keys get the maximum IDF (rare).
  const double max_idf =
      1.0 + std::log(static_cast<double>(documents_ == 0 ? 1 : documents_));
  SparseVec out;
  for (const auto& [k, tf] : counts) {
    const auto it = idf_.find(k);
    const double idf = it == idf_.end() ? max_idf : it->second;
    out[k] = std::log(1.0 + tf) * idf;
  }
  return out;
}

double LogCluster::cosine(const SparseVec& a, const SparseVec& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [k, v] : a) {
    na += v * v;
    const auto it = b.find(k);
    if (it != b.end()) dot += v * it->second;
  }
  for (const auto& [k, v] : b) {
    (void)k;
    nb += v * v;
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void LogCluster::train(const std::vector<std::vector<int>>& sequences) {
  documents_ = sequences.size();
  idf_.clear();
  std::map<int, std::size_t> df;
  for (const auto& seq : sequences) {
    std::map<int, bool> seen;
    for (const int k : seq) {
      if (!seen[k]) {
        seen[k] = true;
        df[k]++;
      }
    }
  }
  for (const auto& [k, n] : df) {
    idf_[k] = 1.0 + std::log(static_cast<double>(documents_) / static_cast<double>(n));
  }

  // Online agglomerative pass: assign each session to the nearest centroid
  // above the threshold, else found a new cluster.
  centroids_.clear();
  cluster_sizes_.clear();
  for (const auto& seq : sequences) {
    const SparseVec v = vectorize(seq);
    double best = -1.0;
    std::size_t best_idx = 0;
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
      const double s = cosine(v, centroids_[c]);
      if (s > best) {
        best = s;
        best_idx = c;
      }
    }
    if (best >= config_.similarity_threshold) {
      // Running-mean centroid update.
      SparseVec& cen = centroids_[best_idx];
      const double n = static_cast<double>(++cluster_sizes_[best_idx]);
      for (auto& [k, w] : cen) w *= (n - 1.0) / n;
      for (const auto& [k, w] : v) cen[k] += w / n;
    } else {
      centroids_.push_back(v);
      cluster_sizes_.push_back(1);
    }
  }
}

double LogCluster::best_similarity(const std::vector<int>& sequence) const {
  const SparseVec v = vectorize(sequence);
  double best = 0.0;
  for (const auto& c : centroids_) best = std::max(best, cosine(v, c));
  return best;
}

bool LogCluster::is_new_pattern(const std::vector<int>& sequence) const {
  return best_similarity(sequence) < config_.similarity_threshold;
}

}  // namespace intellog::baselines
