#include "baselines/deeplog.hpp"

#include <algorithm>
#include <numeric>

namespace intellog::baselines {

DeepLog::DeepLog(Config config) : config_(config) {}

std::size_t DeepLog::encode(int key) const {
  const auto it = vocab_map_.find(key);
  return it == vocab_map_.end() ? vocab_ - 1 : it->second;  // last id = UNK
}

void DeepLog::train(const std::vector<std::vector<int>>& sequences) {
  vocab_map_.clear();
  for (const auto& seq : sequences) {
    for (const int k : seq) vocab_map_.emplace(k, 0);
  }
  std::size_t next = 0;
  for (auto& [k, id] : vocab_map_) id = next++;
  vocab_ = next + 1;  // + UNK

  common::Rng rng(config_.seed);
  net_ = std::make_unique<LstmNetwork>(vocab_, config_.hidden, rng);

  // Collect sliding windows (sequence prefixes shorter than the window are
  // trained as-is so short sessions still contribute).
  std::vector<std::vector<std::size_t>> windows;
  for (const auto& seq : sequences) {
    if (seq.size() < 2) continue;
    std::vector<std::size_t> enc(seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) enc[i] = encode(seq[i]);
    const std::size_t w = config_.window;
    if (enc.size() <= w + 1) {
      windows.push_back(enc);
    } else {
      for (std::size_t start = 0; start + w + 1 <= enc.size(); start += 1) {
        windows.emplace_back(enc.begin() + static_cast<std::ptrdiff_t>(start),
                             enc.begin() + static_cast<std::ptrdiff_t>(start + w + 1));
      }
    }
  }
  if (windows.size() > config_.max_windows) {
    rng.shuffle(windows);
    windows.resize(config_.max_windows);
  }

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(windows);
    for (const auto& w : windows) net_->train_window(w, config_.learning_rate);
  }
}

double DeepLog::miss_fraction(const std::vector<int>& sequence) const {
  if (!net_ || sequence.size() < 2) return 0.0;
  auto state = net_->initial_state();
  std::size_t misses = 0, steps = 0;
  std::vector<std::size_t> order(vocab_);
  for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
    const common::Vector probs = net_->step(encode(sequence[i]), state);
    const std::size_t actual = encode(sequence[i + 1]);
    // Is `actual` among the top-g most probable candidates?
    std::iota(order.begin(), order.end(), 0);
    const std::size_t g = std::min(config_.top_g, order.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(g), order.end(),
                      [&](std::size_t a, std::size_t b) { return probs[a] > probs[b]; });
    bool hit = false;
    for (std::size_t j = 0; j < g; ++j) {
      if (order[j] == actual) {
        hit = true;
        break;
      }
    }
    if (!hit) ++misses;
    ++steps;
  }
  return steps == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(steps);
}

bool DeepLog::is_anomalous(const std::vector<int>& sequence) const {
  return miss_fraction(sequence) > 0.0;  // any miss flags the session
}

}  // namespace intellog::baselines
