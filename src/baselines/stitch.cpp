#include "baselines/stitch.hpp"

#include <algorithm>

namespace intellog::baselines {

std::string_view to_string(IdRelation rel) {
  switch (rel) {
    case IdRelation::Empty: return "empty";
    case IdRelation::OneToOne: return "1:1";
    case IdRelation::OneToMany: return "1:n";
    case IdRelation::ManyToOne: return "n:1";
    case IdRelation::ManyToMany: return "m:n";
  }
  return "empty";
}

void Stitch::observe(const std::vector<core::IdentifierValue>& ids) {
  for (const auto& iv : ids) types_.insert(iv.type);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      const core::IdentifierValue* a = &ids[i];
      const core::IdentifierValue* b = &ids[j];
      if (a->type == b->type) continue;
      if (a->type > b->type) std::swap(a, b);
      pairs_[{a->type, b->type}].insert({a->value, b->value});
    }
  }
}

IdRelation Stitch::relation(const std::string& a, const std::string& b) const {
  const bool flipped = a > b;
  const auto it = pairs_.find(flipped ? std::make_pair(b, a) : std::make_pair(a, b));
  if (it == pairs_.end() || it->second.empty()) return IdRelation::Empty;
  // Fan-outs in both directions.
  std::map<std::string, std::set<std::string>> ab, ba;
  for (const auto& [va, vb] : it->second) {
    ab[va].insert(vb);
    ba[vb].insert(va);
  }
  std::size_t max_ab = 0, max_ba = 0;
  for (const auto& [v, s] : ab) {
    (void)v;
    max_ab = std::max(max_ab, s.size());
  }
  for (const auto& [v, s] : ba) {
    (void)v;
    max_ba = std::max(max_ba, s.size());
  }
  IdRelation rel;
  if (max_ab <= 1 && max_ba <= 1) {
    rel = IdRelation::OneToOne;
  } else if (max_ba <= 1) {
    rel = IdRelation::OneToMany;  // one a -> many b, each b has one a
  } else if (max_ab <= 1) {
    rel = IdRelation::ManyToOne;
  } else {
    rel = IdRelation::ManyToMany;
  }
  if (!flipped) return rel;
  if (rel == IdRelation::OneToMany) return IdRelation::ManyToOne;
  if (rel == IdRelation::ManyToOne) return IdRelation::OneToMany;
  return rel;
}

Stitch::S3Graph Stitch::build() const {
  S3Graph graph;
  // Merge 1:1 partners into clusters.
  std::map<std::string, std::size_t> cluster_of;
  std::vector<std::vector<std::string>> clusters;
  for (const auto& t : types_) {
    bool merged = false;
    for (auto& [other, ci] : cluster_of) {
      if (relation(t, other) == IdRelation::OneToOne) {
        clusters[ci].push_back(t);
        cluster_of[t] = ci;
        merged = true;
        break;
      }
    }
    if (!merged) {
      cluster_of[t] = clusters.size();
      clusters.push_back({t});
    }
  }
  // Hierarchy edges between clusters (any 1:n member pair) and same-level
  // constraints (m:n pairs co-identify objects -> Fig. 9 shows them in one
  // node, e.g. {STAGE, TASK}).
  const auto edge = [&](std::size_t a, std::size_t b) {
    for (const auto& ta : clusters[a]) {
      for (const auto& tb : clusters[b]) {
        if (relation(ta, tb) == IdRelation::OneToMany) return true;
      }
    }
    return false;
  };
  const auto mn = [&](std::size_t a, std::size_t b) {
    for (const auto& ta : clusters[a]) {
      for (const auto& tb : clusters[b]) {
        if (relation(ta, tb) == IdRelation::ManyToMany) return true;
      }
    }
    return false;
  };
  const auto is_isolated = [&](std::size_t c) {
    for (std::size_t o = 0; o < clusters.size(); ++o) {
      if (o == c) continue;
      for (const auto& ta : clusters[c]) {
        for (const auto& tb : clusters[o]) {
          if (relation(ta, tb) != IdRelation::Empty) return false;
        }
      }
    }
    return true;
  };

  // Depth = longest 1:n chain from a root; m:n partners pull each other to
  // the same depth. Iterated to a fixpoint (bounded; 1:n cycles are not
  // observed in identifier data, the bound is a safety net).
  std::vector<std::size_t> depth(clusters.size(), 0);
  std::vector<bool> isolated(clusters.size(), false);
  for (std::size_t c = 0; c < clusters.size(); ++c) isolated[c] = is_isolated(c);
  for (std::size_t round = 0; round <= clusters.size() + 1; ++round) {
    bool changed = false;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (isolated[c]) continue;
      for (std::size_t o = 0; o < clusters.size(); ++o) {
        if (o == c || isolated[o]) continue;
        if (edge(o, c) && depth[c] < depth[o] + 1) {
          depth[c] = depth[o] + 1;
          changed = true;
        }
        if (mn(o, c) && depth[c] < depth[o]) {
          depth[c] = depth[o];
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  std::size_t max_depth = 0;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (isolated[c]) {
      for (const auto& t : clusters[c]) graph.isolated.push_back(t);
    } else {
      max_depth = std::max(max_depth, depth[c]);
    }
  }
  std::sort(graph.isolated.begin(), graph.isolated.end());
  bool any = false;
  for (std::size_t c = 0; c < clusters.size(); ++c) any |= !isolated[c];
  if (!any) return graph;
  graph.levels.assign(max_depth + 1, {});
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (isolated[c]) continue;
    auto& level = graph.levels[depth[c]];
    for (const auto& t : clusters[c]) level.push_back(t);
  }
  for (auto& level : graph.levels) std::sort(level.begin(), level.end());
  // Drop empty levels (possible when m:n pulls vacate a depth).
  std::erase_if(graph.levels, [](const auto& l) { return l.empty(); });
  return graph;
}

std::string Stitch::render() const {
  const S3Graph g = build();
  std::string out;
  for (std::size_t i = 0; i < g.levels.size(); ++i) {
    if (i > 0) out += " -> ";
    out += "{";
    for (std::size_t j = 0; j < g.levels[i].size(); ++j) {
      if (j > 0) out += ", ";
      out += g.levels[i][j];
    }
    out += "}";
  }
  if (!g.isolated.empty()) {
    out += "   isolated: ";
    for (std::size_t j = 0; j < g.isolated.size(); ++j) {
      if (j > 0) out += ", ";
      out += "{" + g.isolated[j] + "}";
    }
  }
  return out;
}

}  // namespace intellog::baselines
