// DeepLog baseline (Du et al., CCS'17) — reimplemented per the paper's
// description for the Table-8 comparison.
//
// An LSTM learns the conditional distribution of the next log key given a
// window of h preceding keys. At detection time, a step is anomalous when
// the actual next key is not among the model's top-g candidates; a session
// is anomalous when any step is (DeepLog's criterion). The paper's point
// (§6.4): this works on infrastructure logs with short fixed-order
// sequences but collapses on data-analytics logs, whose parallel
// interleavings make the next key inherently unpredictable — recall stays
// perfect, precision plummets.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "baselines/lstm.hpp"

namespace intellog::baselines {

class DeepLog {
 public:
  struct Config {
    std::size_t hidden = 32;
    std::size_t window = 10;     ///< history length h
    std::size_t top_g = 9;       ///< candidate set size g
    std::size_t epochs = 2;
    std::size_t max_windows = 20000;  ///< training-window subsample cap
    double learning_rate = 0.01;
    std::uint64_t seed = 42;
  };

  DeepLog() : DeepLog(Config{}) {}
  explicit DeepLog(Config config);

  /// Trains on normal-execution sessions given as log-key id sequences.
  /// Key ids may be arbitrary ints; they are mapped to a dense vocabulary.
  void train(const std::vector<std::vector<int>>& sequences);

  /// True when any step's actual key falls outside the top-g prediction.
  bool is_anomalous(const std::vector<int>& sequence) const;

  /// Fraction of mispredicted steps (diagnostics).
  double miss_fraction(const std::vector<int>& sequence) const;

  std::size_t vocab() const { return vocab_; }
  bool trained() const { return net_ != nullptr; }

 private:
  std::size_t encode(int key) const;  ///< unseen keys -> UNK symbol

  Config config_;
  std::map<int, std::size_t> vocab_map_;
  std::size_t vocab_ = 0;  ///< dense vocab size incl. UNK
  std::unique_ptr<LstmNetwork> net_;
};

}  // namespace intellog::baselines
