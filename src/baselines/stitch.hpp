// Stitch baseline (Zhao et al., OSDI'16): the S³ graph of identifier-pair
// relationships, reconstructed for the Fig. 9 comparison.
//
// Stitch looks only at identifiers (and locality tokens treated as HOST
// identifiers). For every pair of identifier *types* it classifies the
// value-level association observed in the logs:
//   1:1  — interchangeable names for the same object,
//   1:n  — hierarchy (one stage runs many TIDs),
//   m:n  — only the pair identifies an object,
//   empty — never co-occur.
// The S³ graph chains types by 1:n edges; 1:1 partners collapse into one
// node. No semantics are attached — exactly the limitation IntelLog's
// HW-graph addresses.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/intel_key.hpp"

namespace intellog::baselines {

enum class IdRelation { Empty, OneToOne, OneToMany, ManyToOne, ManyToMany };

std::string_view to_string(IdRelation rel);

class Stitch {
 public:
  /// Feeds one observation scope (one log message, or one session-level
  /// binding such as container<->host): identifiers co-occurring in scope.
  void observe(const std::vector<core::IdentifierValue>& ids);

  /// Relation from type a to type b (OneToMany = one a maps to many b).
  IdRelation relation(const std::string& a, const std::string& b) const;

  const std::set<std::string>& types() const { return types_; }

  /// S³ graph levels: types ordered by 1:n hierarchy (roots first), with
  /// 1:1 partners merged into one level entry. Isolated types come last.
  struct S3Graph {
    std::vector<std::vector<std::string>> levels;  ///< hierarchy chain
    std::vector<std::string> isolated;             ///< empty-relation types
  };
  S3Graph build() const;

  /// Fig. 9-style one-line rendering: "{HOST} -> {STAGE, TASK} -> {TID}".
  std::string render() const;

 private:
  std::set<std::string> types_;
  /// (typeA,typeB) -> set of observed (valueA,valueB) pairs; typeA < typeB.
  std::map<std::pair<std::string, std::string>, std::set<std::pair<std::string, std::string>>>
      pairs_;
};

}  // namespace intellog::baselines
