// A from-scratch LSTM for the DeepLog baseline (see DESIGN.md).
//
// Single-layer LSTM with a softmax projection, trained by truncated BPTT
// with Adam. Sized for log-key vocabularies (tens to a few hundred
// symbols), so plain scalar matrix kernels from common/matrix are plenty.
//
// Gate layout packs [input, forget, cell, output] into one (4H x (V+H))
// weight so a step is two matvecs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace intellog::baselines {

class LstmNetwork {
 public:
  /// vocab = input/output symbol count, hidden = LSTM width.
  LstmNetwork(std::size_t vocab, std::size_t hidden, common::Rng& rng);

  struct StepState {
    common::Vector h, c;  ///< hidden and cell state
  };
  StepState initial_state() const;

  /// One forward step: consumes symbol id, updates state, returns the
  /// softmax distribution over the next symbol.
  common::Vector step(std::size_t symbol, StepState& state) const;

  /// Trains on one window (symbols[0..n-2] -> symbols[1..n-1]) with BPTT;
  /// returns the mean cross-entropy loss over the window.
  double train_window(const std::vector<std::size_t>& symbols, double learning_rate);

  std::size_t vocab() const { return vocab_; }
  std::size_t hidden() const { return hidden_; }

 private:
  struct StepCache;  // forward activations kept for backprop

  std::size_t vocab_, hidden_;
  common::Matrix w_gates_;  ///< 4H x (V+H)
  common::Vector b_gates_;  ///< 4H
  common::Matrix w_out_;    ///< V x H
  common::Vector b_out_;    ///< V

  // Adam state (same shapes as the parameters).
  common::Matrix m_wg_, v_wg_, m_wo_, v_wo_;
  common::Vector m_bg_, v_bg_, m_bo_, v_bo_;
  std::size_t adam_t_ = 0;

  void adam_update(common::Matrix& p, common::Matrix& g, common::Matrix& m, common::Matrix& v,
                   double lr);
  void adam_update_vec(common::Vector& p, common::Vector& g, common::Vector& m, common::Vector& v,
                       double lr);
};

}  // namespace intellog::baselines
