// Flight-recorder event vocabulary.
//
// Every FLIGHT_EVENT site names one of these ids; the table below is the
// single source of truth the decoder, the /flightz route, and the CI
// validator use to annotate raw records. Adding an event means adding an
// enum entry AND a table row — decode drops records whose id falls outside
// the table, which is also how torn ring slots are filtered.
#pragma once

#include <cstddef>
#include <cstdint>

namespace intellog::obs::flight {

enum class FlightEventId : std::uint16_t {
  kRecorderEnable = 0,    ///< a=ring_capacity b=max_threads
  kIngestAdmit,           ///< a=records b=lines_total
  kIngestQuarantine,      ///< a=quarantined b=lines_total
  kSpellRefine,           ///< a=key_id b=key_count
  kDetectShardBegin,      ///< a=shard b=sessions
  kDetectShardEnd,        ///< a=shard b=sessions
  kOnlineEvict,           ///< a=session_hash b=open_sessions
  kOnlineCheckpoint,      ///< a=open_sessions b=seq
  kTenantTick,            ///< str=tenant a=tick b=epoch
  kTenantShed,            ///< str=tenant a=files b=bytes
  kBreakerTransition,     ///< str=tenant a=new_state b=old_state (BreakerState)
  kWatchdogRestart,       ///< str=tenant a=epoch b=tick
  kDrainBegin,            ///< a=signal b=tick
  kDrainEnd,              ///< a=ticks b=sessions
  kHttpRequest,           ///< a=status
  kPoolEnqueue,           ///< a=queue_depth
  kPoolDequeue,           ///< a=queue_depth b=delay_us
  kPoolRetire,            ///< a=busy_us b=idle_us
  kSignal,                ///< a=signo b=fault_addr
  kFlightDump,            ///< a=reason b=rings
  kMaxEvent,              // sentinel — keep last
};

struct FlightEventInfo {
  const char* name;       ///< stable snake_case name, e.g. "tenant.tick"
  const char* subsystem;  ///< ingest / spell / detect / online / tenant / serve / http / pool / signal / flight
  const char* arg_a;      ///< annotation for the first u64 argument
  const char* arg_b;      ///< annotation for the second u64 argument
};

inline const FlightEventInfo& event_info(FlightEventId id) {
  static constexpr FlightEventInfo kTable[] = {
      {"flight.enable", "flight", "ring_capacity", "max_threads"},
      {"ingest.admit", "ingest", "records", "lines_total"},
      {"ingest.quarantine", "ingest", "quarantined", "lines_total"},
      {"spell.refine", "spell", "key_id", "key_count"},
      {"detect.shard_begin", "detect", "shard", "sessions"},
      {"detect.shard_end", "detect", "shard", "sessions"},
      {"online.evict", "online", "session_hash", "open_sessions"},
      {"online.checkpoint", "online", "open_sessions", "seq"},
      {"tenant.tick", "tenant", "tick", "epoch"},
      {"tenant.shed", "tenant", "files", "bytes"},
      {"tenant.breaker", "tenant", "new_state", "old_state"},
      {"serve.watchdog_restart", "serve", "epoch", "tick"},
      {"serve.drain_begin", "serve", "signal", "tick"},
      {"serve.drain_end", "serve", "ticks", "sessions"},
      {"http.request", "http", "status", "unused"},
      {"pool.enqueue", "pool", "queue_depth", "unused"},
      {"pool.dequeue", "pool", "queue_depth", "delay_us"},
      {"pool.retire", "pool", "busy_us", "idle_us"},
      {"signal.caught", "signal", "signo", "fault_addr"},
      {"flight.dump", "flight", "reason", "rings"},
  };
  static_assert(sizeof(kTable) / sizeof(kTable[0]) ==
                    static_cast<std::size_t>(FlightEventId::kMaxEvent),
                "event table out of sync with FlightEventId");
  return kTable[static_cast<std::size_t>(id)];
}

inline bool valid_event(std::uint16_t raw) {
  return raw < static_cast<std::uint16_t>(FlightEventId::kMaxEvent);
}

}  // namespace intellog::obs::flight
