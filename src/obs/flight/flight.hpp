// Black-box flight recorder: always-on, crash-safe event journal.
//
// Aviation-FDR / JFR style: every thread that emits events owns a
// lock-free ring of fixed 32-byte binary records (common/eventring). The
// `FLIGHT_EVENT` macro costs exactly one relaxed atomic load while the
// recorder is idle, and on the enabled path claims a slot with plain
// stores — no locks, no allocation, ever. Strings are interned into a
// fixed arena (common/strtab) at startup/registration time and referenced
// by 32-bit id from records.
//
// The crash side: `install_crash_handlers()` hooks SIGSEGV/SIGBUS/
// SIGABRT/SIGFPE with an async-signal-safe handler that records the
// signal, freezes the recorder (one atomic store), and dumps the rings +
// string table + signal context to a *pre-opened* blackbox fd using only
// write(2)/lseek(2)/ftruncate(2), then re-raises so the process still dies
// with the original signal. Graceful paths (drain, watchdog shard
// abandonment) snapshot through the same dumper via `ScopedFlightDump`.
//
// Timestamps: records carry steady_clock nanoseconds only; the state keeps
// one (wall_ns, steady_ns) anchor pair captured at enable, and the decoder
// reconstructs wall time as anchor_wall + (steady - anchor_steady) — the
// JFR chunk-epoch trick, which keeps the hot path to a single clock read.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/eventring.hpp"
#include "common/json.hpp"
#include "common/strtab.hpp"
#include "obs/flight/events.hpp"

namespace intellog::obs::flight {

// --- records + state ---------------------------------------------------------

/// One journal entry. 32 bytes, trivially copyable, dumped raw.
struct FlightRecord {
  std::uint64_t steady_ns = 0;  ///< steady_clock; 0 marks a never-written slot
  std::uint16_t event = 0;      ///< FlightEventId
  std::uint16_t tid = 0;        ///< ring slot of the emitting thread
  std::uint32_t str = 0;        ///< FixedStringTable id; 0 = none
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(sizeof(FlightRecord) == 32, "flight records are fixed 32-byte");

inline constexpr std::size_t kRingCapacity = 4096;  // 128 KiB of history/thread
inline constexpr std::size_t kMaxThreads = 64;
inline constexpr std::size_t kStringArenaBytes = 64 * 1024;
inline constexpr std::size_t kMaxStrings = 2048;

using FlightRing = common::EventRing<FlightRecord, kRingCapacity>;

/// Why a dump was taken (header field; also the arg of flight.dump events).
enum class DumpReason : std::uint32_t {
  kGracefulDrain = 0,
  kSignal = 1,
  kWatchdog = 2,
  kManual = 3,
};

const char* to_string(DumpReason reason);

/// All recorder memory lives here, allocated once at enable and leaked on
/// disable so a frozen dumper (possibly inside a signal handler) can keep
/// reading it without coordinating with the thread that disabled it.
struct FlightState {
  std::atomic<FlightRing*> rings[kMaxThreads] = {};
  std::atomic<std::uint32_t> nrings{0};
  std::atomic<std::uint64_t> dropped{0};  ///< events lost to thread overflow
  common::FixedStringTable strings{kStringArenaBytes, kMaxStrings};
  std::uint64_t anchor_wall_ns = 0;    ///< wall clock at enable
  std::uint64_t anchor_steady_ns = 0;  ///< steady clock at enable
  std::uint64_t generation = 0;        ///< bumps per enable; keys TL ring cache
};

namespace detail {
extern std::atomic<FlightState*> g_state;
void emit_slow(FlightState* st, FlightEventId id, std::uint64_t a, std::uint64_t b,
               std::uint32_t str) noexcept;
}  // namespace detail

// --- recording ---------------------------------------------------------------

/// Starts recording. Idempotent; a fresh enable after disable starts a new
/// generation with empty rings.
void flight_enable();

/// Stops recording (one atomic store). The state is intentionally leaked:
/// a dumper holding a raw pointer may still be reading it.
void flight_disable();

inline bool flight_enabled() {
  return detail::g_state.load(std::memory_order_relaxed) != nullptr;
}

/// The live state, or nullptr when disabled. For snapshots/tests.
inline FlightState* flight_state() {
  return detail::g_state.load(std::memory_order_acquire);
}

/// Interns `s` for use as a record's string id. Mutex + possible map
/// allocation — call at startup/registration time, not per event.
/// Returns 0 when disabled or when the fixed table is full.
std::uint32_t flight_intern(std::string_view s);

/// The hot path. One relaxed load when idle; no allocation ever.
inline void flight_emit(FlightEventId id, std::uint64_t a = 0, std::uint64_t b = 0,
                        std::uint32_t str = 0) noexcept {
  FlightState* st = detail::g_state.load(std::memory_order_relaxed);
  if (st == nullptr) return;
  detail::emit_slow(st, id, a, b, str);
}

#define FLIGHT_EVENT(id, a, b) \
  ::intellog::obs::flight::flight_emit(::intellog::obs::flight::FlightEventId::id, (a), (b))
#define FLIGHT_EVENT_STR(id, a, b, str_id)                                            \
  ::intellog::obs::flight::flight_emit(::intellog::obs::flight::FlightEventId::id, (a), \
                                       (b), (str_id))

// --- dumping -----------------------------------------------------------------

/// Points the recorder at its blackbox file: rotates an existing file to
/// `<path>.1` and pre-opens the fd the crash handler will write to.
/// Returns false (with errno intact) when the file cannot be opened.
bool flight_set_dump_path(const std::string& path);

/// The pre-opened dump fd, or -1. Exposed for tests.
int flight_dump_fd();

/// Snapshot the rings + strings + context to the pre-opened fd. Safe from
/// normal context; the signal handler calls the same underlying writer.
/// No-op (returns false) when no dump path is configured or recording is
/// off. Does not freeze the recorder.
bool flight_dump_now(DumpReason reason);

/// Installs async-signal-safe handlers for SIGSEGV/SIGBUS/SIGABRT/SIGFPE
/// that record the signal, freeze the rings, dump, and re-raise.
void install_crash_handlers();

/// RAII snapshot: dumps with `reason` on destruction. Scope it around a
/// graceful drain or a watchdog shard-abandonment so wedge forensics do
/// not require a crash.
class ScopedFlightDump {
 public:
  explicit ScopedFlightDump(DumpReason reason) : reason_(reason) {}
  ~ScopedFlightDump() { flight_dump_now(reason_); }
  ScopedFlightDump(const ScopedFlightDump&) = delete;
  ScopedFlightDump& operator=(const ScopedFlightDump&) = delete;

 private:
  DumpReason reason_;
};

// --- decoding ----------------------------------------------------------------

/// One validated, annotated record from a dump or live snapshot.
struct DecodedEvent {
  std::uint64_t seq = 0;        ///< per-thread sequence number
  std::uint64_t steady_ns = 0;
  std::uint64_t wall_ns = 0;    ///< reconstructed from the anchor pair
  std::uint32_t slot = 0;       ///< ring slot (dense thread index)
  std::uint32_t os_tid = 0;
  FlightEventId id{};
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string str;              ///< resolved string, empty when none
};

struct FlightDump {
  std::uint32_t version = 0;
  DumpReason reason = DumpReason::kManual;
  std::uint32_t signo = 0;
  std::uint64_t fault_addr = 0;
  std::uint64_t anchor_wall_ns = 0;
  std::uint64_t anchor_steady_ns = 0;
  std::uint64_t dump_steady_ns = 0;
  std::uint64_t dropped = 0;
  std::uint32_t nthreads = 0;
  std::vector<std::string> strings;
  /// Merged, time-ordered (steady_ns, then slot, then seq).
  std::vector<DecodedEvent> events;
};

/// Parses a blackbox file. Throws std::runtime_error on bad magic,
/// truncation, or a record size this build does not understand. Torn ring
/// slots (invalid event id / zero timestamp) are silently dropped.
FlightDump decode_flight_file(const std::string& path);

/// Renders the merged log as human-readable text, one event per line.
std::string render_flight_text(const FlightDump& dump);

/// JSON document: header + merged event array (the CI validator input).
common::Json flight_dump_json(const FlightDump& dump);

/// Live snapshot of the enabled recorder as the same JSON shape, capped at
/// `max_events` most recent events across all threads. `{"enabled":false}`
/// when the recorder is off. Backs the /flightz admin route.
common::Json flight_snapshot_json(std::size_t max_events = 512);

}  // namespace intellog::obs::flight
