#include "obs/flight/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace intellog::obs::flight {

namespace detail {
std::atomic<FlightState*> g_state{nullptr};
}  // namespace detail

namespace {

std::atomic<int> g_dump_fd{-1};

std::uint64_t steady_now_ns() noexcept {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t wall_now_ns() noexcept {
  timespec ts;
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint32_t os_thread_id() noexcept {
#ifdef SYS_gettid
  return static_cast<std::uint32_t>(::syscall(SYS_gettid));
#else
  return 0;
#endif
}

/// Per-thread ring handle, keyed by recorder generation so a
/// disable/enable cycle (tests, bench) re-registers cleanly.
struct ThreadRingCache {
  std::uint64_t generation = UINT64_MAX;
  std::uint32_t slot = 0;
  FlightRing* ring = nullptr;
};
thread_local ThreadRingCache t_ring_cache;

// --- on-disk format ----------------------------------------------------------

constexpr char kMagic[8] = {'I', 'L', 'F', 'R', '1', 0, 0, 0};
constexpr std::uint32_t kVersion = 1;

struct DumpHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t record_size;
  std::uint32_t ring_capacity;
  std::uint32_t reason;
  std::uint32_t signo;
  std::uint32_t nthreads;
  std::uint32_t nstrings;
  std::uint32_t strtab_bytes;
  std::uint64_t fault_addr;
  std::uint64_t anchor_wall_ns;
  std::uint64_t anchor_steady_ns;
  std::uint64_t dump_steady_ns;
  std::uint64_t dropped;
};
static_assert(sizeof(DumpHeader) == 80, "dump header layout is part of the format");

struct RingDumpHeader {
  std::uint32_t slot;
  std::uint32_t os_tid;
  std::uint64_t head;
  std::uint64_t nrecords;  ///< record structs that follow
};
static_assert(sizeof(RingDumpHeader) == 24);

/// write(2) until done; EINTR-safe; async-signal-safe.
bool full_write(int fd, const void* data, std::size_t n) noexcept {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// The dump writer. Everything it touches is preallocated plain memory;
/// the only calls are lseek/ftruncate/write — all async-signal-safe.
bool write_dump_to_fd(int fd, FlightState* st, DumpReason reason, int signo,
                      std::uint64_t fault_addr) noexcept {
  ::lseek(fd, 0, SEEK_SET);  // latest snapshot wins within a run
  while (::ftruncate(fd, 0) < 0 && errno == EINTR) {
  }

  const std::uint32_t nrings_raw = st->nrings.load(std::memory_order_acquire);
  const std::uint32_t nthreads =
      std::min<std::uint32_t>(nrings_raw, static_cast<std::uint32_t>(kMaxThreads));
  // Read the string count before the arena watermark: `used` may include
  // bytes of a string still being appended, but every offset/length pair
  // below `nstrings` is fully published.
  const std::uint32_t nstrings = st->strings.size();
  const std::uint32_t strtab_bytes = static_cast<std::uint32_t>(st->strings.arena_used());

  DumpHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kVersion;
  h.record_size = sizeof(FlightRecord);
  h.ring_capacity = static_cast<std::uint32_t>(kRingCapacity);
  h.reason = static_cast<std::uint32_t>(reason);
  h.signo = static_cast<std::uint32_t>(signo);
  h.nthreads = nthreads;
  h.nstrings = nstrings;
  h.strtab_bytes = strtab_bytes;
  h.fault_addr = fault_addr;
  h.anchor_wall_ns = st->anchor_wall_ns;
  h.anchor_steady_ns = st->anchor_steady_ns;
  h.dump_steady_ns = steady_now_ns();
  h.dropped = st->dropped.load(std::memory_order_relaxed);

  if (!full_write(fd, &h, sizeof(h))) return false;
  if (!full_write(fd, st->strings.offsets(), nstrings * sizeof(std::uint32_t))) return false;
  if (!full_write(fd, st->strings.lengths(), nstrings * sizeof(std::uint32_t))) return false;
  if (!full_write(fd, st->strings.arena_data(), strtab_bytes)) return false;

  for (std::uint32_t slot = 0; slot < nthreads; ++slot) {
    FlightRing* ring = st->rings[slot].load(std::memory_order_acquire);
    RingDumpHeader rh{};
    rh.slot = slot;
    if (ring == nullptr) {
      // A thread claimed the slot but has not published its ring yet.
      if (!full_write(fd, &rh, sizeof(rh))) return false;
      continue;
    }
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    rh.os_tid = ring->os_tid;
    rh.head = head;
    rh.nrecords = head < kRingCapacity ? head : kRingCapacity;
    if (!full_write(fd, &rh, sizeof(rh))) return false;
    // The raw array, indexed by seq & mask; when not yet wrapped, the
    // resident prefix [0, head) is exactly the first `nrecords` slots.
    if (!full_write(fd, ring->records, rh.nrecords * sizeof(FlightRecord))) return false;
  }
  return true;
}

// --- crash handler -----------------------------------------------------------

void crash_handler(int sig, siginfo_t* info, void*) {
  static std::atomic<int> entered{0};
  int expected = 0;
  if (entered.compare_exchange_strong(expected, 1)) {
    FlightState* st = detail::g_state.load(std::memory_order_acquire);
    const std::uint64_t fault_addr =
        info != nullptr ? reinterpret_cast<std::uint64_t>(info->si_addr) : 0;
    if (st != nullptr) {
      // Journal the signal itself — but only if this thread already owns
      // a ring; registration allocates and is off-limits here.
      ThreadRingCache& tc = t_ring_cache;
      if (tc.generation == st->generation && tc.ring != nullptr) {
        FlightRecord r;
        r.steady_ns = steady_now_ns();
        r.event = static_cast<std::uint16_t>(FlightEventId::kSignal);
        r.tid = static_cast<std::uint16_t>(tc.slot);
        r.a = static_cast<std::uint64_t>(sig);
        r.b = fault_addr;
        tc.ring->push(r);
      }
      // Freeze: one store. Other threads stop emitting; we keep the raw
      // pointer and dump what the rings held at the moment of death.
      detail::g_state.store(nullptr, std::memory_order_release);
      const int fd = g_dump_fd.load(std::memory_order_acquire);
      if (fd >= 0) {
        write_dump_to_fd(fd, st, DumpReason::kSignal, sig, fault_addr);
      }
    }
  }
  // SA_RESETHAND restored the default disposition before we ran, so the
  // re-raise kills the process with the original signal (exit 128+sig).
  ::raise(sig);
}

}  // namespace

const char* to_string(DumpReason reason) {
  switch (reason) {
    case DumpReason::kGracefulDrain:
      return "graceful-drain";
    case DumpReason::kSignal:
      return "signal";
    case DumpReason::kWatchdog:
      return "watchdog";
    case DumpReason::kManual:
      return "manual";
  }
  return "unknown";
}

namespace detail {

void emit_slow(FlightState* st, FlightEventId id, std::uint64_t a, std::uint64_t b,
               std::uint32_t str) noexcept {
  ThreadRingCache& tc = t_ring_cache;
  if (tc.generation != st->generation) {
    const std::uint32_t slot = st->nrings.fetch_add(1, std::memory_order_acq_rel);
    if (slot < kMaxThreads) {
      auto* ring = new FlightRing();
      ring->os_tid = os_thread_id();
      st->rings[slot].store(ring, std::memory_order_release);
      tc.slot = slot;
      tc.ring = ring;
    } else {
      tc.ring = nullptr;  // thread budget exhausted: count drops instead
    }
    tc.generation = st->generation;
  }
  if (tc.ring == nullptr) {
    st->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  FlightRecord r;
  r.steady_ns = steady_now_ns();
  r.event = static_cast<std::uint16_t>(id);
  r.tid = static_cast<std::uint16_t>(tc.slot);
  r.str = str;
  r.a = a;
  r.b = b;
  tc.ring->push(r);
}

}  // namespace detail

void flight_enable() {
  static std::mutex mu;
  static std::uint64_t generation = 0;
  std::lock_guard lock(mu);
  if (detail::g_state.load(std::memory_order_relaxed) != nullptr) return;
  auto* st = new FlightState();
  st->anchor_wall_ns = wall_now_ns();
  st->anchor_steady_ns = steady_now_ns();
  st->generation = ++generation;
  detail::g_state.store(st, std::memory_order_release);
  flight_emit(FlightEventId::kRecorderEnable, kRingCapacity, kMaxThreads);
}

void flight_disable() {
  // The state (and its rings) is never freed: a dumper or snapshot reader
  // racing this store may still hold the raw pointer. Parking it on a
  // process-lifetime retired list keeps it reachable, so leak checkers see
  // the retention as deliberate rather than as a lost allocation.
  FlightState* st = detail::g_state.exchange(nullptr, std::memory_order_acq_rel);
  if (st != nullptr) {
    static std::mutex mu;
    static std::vector<FlightState*>* retired = new std::vector<FlightState*>();
    std::lock_guard lock(mu);
    retired->push_back(st);
  }
}

std::uint32_t flight_intern(std::string_view s) {
  FlightState* st = flight_state();
  return st != nullptr ? st->strings.intern(s) : common::FixedStringTable::kNone;
}

bool flight_set_dump_path(const std::string& path) {
  // Rotate a prior run's dump out of the way before pre-opening.
  if (::access(path.c_str(), F_OK) == 0) {
    const std::string aged = path + ".1";
    ::rename(path.c_str(), aged.c_str());
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const int prev = g_dump_fd.exchange(fd, std::memory_order_acq_rel);
  if (prev >= 0) ::close(prev);
  return true;
}

int flight_dump_fd() { return g_dump_fd.load(std::memory_order_acquire); }

bool flight_dump_now(DumpReason reason) {
  FlightState* st = flight_state();
  const int fd = g_dump_fd.load(std::memory_order_acquire);
  if (st == nullptr || fd < 0) return false;
  const std::uint32_t nthreads = std::min<std::uint32_t>(
      st->nrings.load(std::memory_order_acquire), static_cast<std::uint32_t>(kMaxThreads));
  flight_emit(FlightEventId::kFlightDump, static_cast<std::uint64_t>(reason), nthreads);
  return write_dump_to_fd(fd, st, reason, /*signo=*/0, /*fault_addr=*/0);
}

void install_crash_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = crash_handler;
  sigemptyset(&sa.sa_mask);
  // RESETHAND so the re-raise takes the default (fatal) action; NODEFER so
  // a fault inside the handler itself cannot deadlock delivery.
  sa.sa_flags = SA_SIGINFO | SA_RESETHAND | SA_NODEFER;
  for (const int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

// --- decoding ----------------------------------------------------------------

namespace {

std::uint64_t wall_of(std::uint64_t steady_ns, std::uint64_t anchor_wall,
                      std::uint64_t anchor_steady) {
  // Events can slightly predate the anchor only through clock weirdness;
  // clamp instead of underflowing.
  if (steady_ns >= anchor_steady) return anchor_wall + (steady_ns - anchor_steady);
  const std::uint64_t back = anchor_steady - steady_ns;
  return back > anchor_wall ? 0 : anchor_wall - back;
}

void sort_events(std::vector<DecodedEvent>& events) {
  std::sort(events.begin(), events.end(), [](const DecodedEvent& x, const DecodedEvent& y) {
    if (x.steady_ns != y.steady_ns) return x.steady_ns < y.steady_ns;
    if (x.slot != y.slot) return x.slot < y.slot;
    return x.seq < y.seq;
  });
}

// `records_bytes` points at the raw dumped array and is NOT necessarily
// 8-byte aligned (it follows a variable-length string arena in the file),
// so each record is memcpy'd out instead of cast in place.
void decode_ring_records(const char* records_bytes, std::uint64_t head,
                         std::uint64_t nrecords, std::uint32_t slot, std::uint32_t os_tid,
                         const FlightDump& ctx, std::vector<DecodedEvent>& out) {
  const std::uint64_t first = head - nrecords;
  for (std::uint64_t seq = first; seq < head; ++seq) {
    FlightRecord r;
    std::memcpy(&r, records_bytes + (seq & (kRingCapacity - 1)) * sizeof(FlightRecord),
                sizeof(r));
    // Torn or never-written slots: a producer may have been mid-push when
    // the rings were frozen. Validate instead of synchronizing.
    if (r.steady_ns == 0 || !valid_event(r.event)) continue;
    DecodedEvent ev;
    ev.seq = seq;
    ev.steady_ns = r.steady_ns;
    ev.wall_ns = wall_of(r.steady_ns, ctx.anchor_wall_ns, ctx.anchor_steady_ns);
    ev.slot = slot;
    ev.os_tid = os_tid;
    ev.id = static_cast<FlightEventId>(r.event);
    ev.a = r.a;
    ev.b = r.b;
    if (r.str != 0 && r.str <= ctx.strings.size()) ev.str = ctx.strings[r.str - 1];
    out.push_back(std::move(ev));
  }
}

}  // namespace

FlightDump decode_flight_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("flight: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());

  const auto need = [&](std::size_t off, std::size_t n, const char* what) {
    if (off + n > bytes.size()) {
      throw std::runtime_error(std::string("flight: truncated dump (") + what + ")");
    }
  };

  DumpHeader h{};
  need(0, sizeof(h), "header");
  std::memcpy(&h, bytes.data(), sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("flight: bad magic — not a blackbox dump: " + path);
  }
  if (h.version != kVersion) {
    throw std::runtime_error("flight: unsupported dump version " + std::to_string(h.version));
  }
  if (h.record_size != sizeof(FlightRecord)) {
    throw std::runtime_error("flight: record size mismatch (dump " +
                             std::to_string(h.record_size) + ", decoder " +
                             std::to_string(sizeof(FlightRecord)) + ")");
  }

  FlightDump dump;
  dump.version = h.version;
  dump.reason = static_cast<DumpReason>(h.reason);
  dump.signo = h.signo;
  dump.fault_addr = h.fault_addr;
  dump.anchor_wall_ns = h.anchor_wall_ns;
  dump.anchor_steady_ns = h.anchor_steady_ns;
  dump.dump_steady_ns = h.dump_steady_ns;
  dump.dropped = h.dropped;
  dump.nthreads = h.nthreads;

  std::size_t off = sizeof(h);
  need(off, static_cast<std::size_t>(h.nstrings) * 8 + h.strtab_bytes, "string table");
  std::vector<std::uint32_t> soff(h.nstrings), slen(h.nstrings);
  std::memcpy(soff.data(), bytes.data() + off, h.nstrings * sizeof(std::uint32_t));
  off += h.nstrings * sizeof(std::uint32_t);
  std::memcpy(slen.data(), bytes.data() + off, h.nstrings * sizeof(std::uint32_t));
  off += h.nstrings * sizeof(std::uint32_t);
  const char* arena = bytes.data() + off;
  for (std::uint32_t i = 0; i < h.nstrings; ++i) {
    if (static_cast<std::size_t>(soff[i]) + slen[i] > h.strtab_bytes) {
      throw std::runtime_error("flight: corrupt string table entry");
    }
    dump.strings.emplace_back(arena + soff[i], slen[i]);
  }
  off += h.strtab_bytes;

  for (std::uint32_t t = 0; t < h.nthreads; ++t) {
    RingDumpHeader rh{};
    need(off, sizeof(rh), "ring header");
    std::memcpy(&rh, bytes.data() + off, sizeof(rh));
    off += sizeof(rh);
    if (rh.nrecords > kRingCapacity) throw std::runtime_error("flight: corrupt ring header");
    need(off, rh.nrecords * sizeof(FlightRecord), "ring records");
    decode_ring_records(bytes.data() + off, rh.head, rh.nrecords, rh.slot, rh.os_tid, dump,
                        dump.events);
    off += rh.nrecords * sizeof(FlightRecord);
  }
  sort_events(dump.events);
  return dump;
}

std::string render_flight_text(const FlightDump& dump) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "blackbox: reason=%s signo=%u fault_addr=0x%llx threads=%u events=%zu "
                "dropped=%llu\n",
                to_string(dump.reason), dump.signo,
                static_cast<unsigned long long>(dump.fault_addr), dump.nthreads,
                dump.events.size(), static_cast<unsigned long long>(dump.dropped));
  out += line;

  for (const DecodedEvent& ev : dump.events) {
    const FlightEventInfo& info = event_info(ev.id);
    const double rel_s =
        ev.steady_ns >= dump.anchor_steady_ns
            ? static_cast<double>(ev.steady_ns - dump.anchor_steady_ns) / 1e9
            : -static_cast<double>(dump.anchor_steady_ns - ev.steady_ns) / 1e9;
    const time_t wall_s = static_cast<time_t>(ev.wall_ns / 1'000'000'000ull);
    struct tm tm_utc;
    ::gmtime_r(&wall_s, &tm_utc);
    char when[40];
    std::strftime(when, sizeof(when), "%Y-%m-%dT%H:%M:%S", &tm_utc);
    std::snprintf(line, sizeof(line),
                  "[t%02u tid=%u] +%010.6fs %s.%03uZ %-22s %s=%llu %s=%llu", ev.slot,
                  ev.os_tid, rel_s, when,
                  static_cast<unsigned>((ev.wall_ns / 1'000'000ull) % 1000), info.name,
                  info.arg_a, static_cast<unsigned long long>(ev.a), info.arg_b,
                  static_cast<unsigned long long>(ev.b));
    out += line;
    if (!ev.str.empty()) {
      out += " \"";
      out += ev.str;
      out += '"';
    }
    out += '\n';
  }
  return out;
}

namespace {

common::Json events_json(const FlightDump& dump) {
  common::Json events = common::Json::array();
  for (const DecodedEvent& ev : dump.events) {
    const FlightEventInfo& info = event_info(ev.id);
    common::Json e = common::Json::object();
    e["seq"] = static_cast<std::size_t>(ev.seq);
    e["steady_ns"] = static_cast<std::size_t>(ev.steady_ns);
    e["wall_ns"] = static_cast<std::size_t>(ev.wall_ns);
    e["slot"] = static_cast<std::size_t>(ev.slot);
    e["os_tid"] = static_cast<std::size_t>(ev.os_tid);
    e["event"] = info.name;
    e["subsystem"] = info.subsystem;
    e[info.arg_a] = static_cast<std::size_t>(ev.a);
    e[info.arg_b] = static_cast<std::size_t>(ev.b);
    if (!ev.str.empty()) e["str"] = ev.str;
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace

common::Json flight_dump_json(const FlightDump& dump) {
  common::Json out = common::Json::object();
  out["kind"] = "intellog_flight";
  out["version"] = static_cast<std::size_t>(dump.version);
  out["reason"] = to_string(dump.reason);
  out["signo"] = static_cast<std::size_t>(dump.signo);
  char addr[24];
  std::snprintf(addr, sizeof(addr), "0x%llx", static_cast<unsigned long long>(dump.fault_addr));
  out["fault_addr"] = addr;
  out["anchor_wall_ns"] = static_cast<std::size_t>(dump.anchor_wall_ns);
  out["anchor_steady_ns"] = static_cast<std::size_t>(dump.anchor_steady_ns);
  out["dump_steady_ns"] = static_cast<std::size_t>(dump.dump_steady_ns);
  out["dropped"] = static_cast<std::size_t>(dump.dropped);
  out["threads"] = static_cast<std::size_t>(dump.nthreads);
  out["events"] = events_json(dump);
  return out;
}

common::Json flight_snapshot_json(std::size_t max_events) {
  FlightState* st = flight_state();
  if (st == nullptr) {
    common::Json out = common::Json::object();
    out["enabled"] = false;
    return out;
  }

  FlightDump live;
  live.version = kVersion;
  live.reason = DumpReason::kManual;
  live.anchor_wall_ns = st->anchor_wall_ns;
  live.anchor_steady_ns = st->anchor_steady_ns;
  live.dump_steady_ns = steady_now_ns();
  live.dropped = st->dropped.load(std::memory_order_relaxed);
  const std::uint32_t nthreads = std::min<std::uint32_t>(
      st->nrings.load(std::memory_order_acquire), static_cast<std::uint32_t>(kMaxThreads));
  live.nthreads = nthreads;
  const std::uint32_t nstrings = st->strings.size();
  for (std::uint32_t i = 1; i <= nstrings; ++i) live.strings.emplace_back(st->strings.text(i));

  std::vector<FlightRecord> scratch(kRingCapacity);
  for (std::uint32_t slot = 0; slot < nthreads; ++slot) {
    FlightRing* ring = st->rings[slot].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t n = ring->snapshot(scratch.data());
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    // snapshot() copied the resident window [head-n, head) oldest-first
    // into scratch[0..n); re-index so decode sees seq & mask addressing.
    std::vector<FlightRecord> raw(kRingCapacity);
    for (std::uint64_t i = 0; i < n; ++i) raw[(head - n + i) & (kRingCapacity - 1)] = scratch[i];
    decode_ring_records(reinterpret_cast<const char*>(raw.data()), head, n, slot, ring->os_tid,
                        live, live.events);
  }
  sort_events(live.events);
  if (live.events.size() > max_events) {
    live.events.erase(live.events.begin(),
                      live.events.end() - static_cast<std::ptrdiff_t>(max_events));
  }

  common::Json out = flight_dump_json(live);
  out["enabled"] = true;
  return out;
}

}  // namespace intellog::obs::flight
