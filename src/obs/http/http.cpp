#include "obs/http/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include "obs/flight/flight.hpp"
#include "obs/metrics.hpp"

namespace intellog::obs::http {

namespace {

constexpr std::string_view kHeaderEnd = "\r\n\r\n";

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Remaining milliseconds before `deadline_ns`, clamped to >= 0.
int remaining_ms(std::uint64_t deadline_ns) {
  const std::uint64_t now = monotonic_ns();
  if (now >= deadline_ns) return 0;
  return static_cast<int>((deadline_ns - now) / 1'000'000);
}

/// Sends the whole buffer; false on any error. MSG_NOSIGNAL: a scraper
/// that hung up mid-write must surface as EPIPE, not kill the process.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool write_response(int fd, const HttpResponse& resp, bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " ";
  out += reason_phrase(resp.status);
  out += "\r\nContent-Type: " + resp.content_type;
  out += "\r\nContent-Length: " + std::to_string(resp.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += resp.body;
  return send_all(fd, out);
}

HttpResponse error_response(int status, std::string message) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/plain; charset=utf-8";
  r.body = std::move(message) + "\n";
  return r;
}

void count_request(int status) {
  FLIGHT_EVENT(kHttpRequest, static_cast<std::uint64_t>(status), 0);
  if (MetricsRegistry* reg = registry()) {
    reg->counter("intellog_http_requests_total", {{"code", std::to_string(status)}})
        .add(1);
  }
}

/// Reads from `fd` until the blank line ending the header block, an error,
/// the byte cap, or the deadline. GET/HEAD carry no body, so the header
/// block is the whole request.
enum class ReadOutcome { Ok, Timeout, Oversize, Closed };
ReadOutcome read_request_head(int fd, std::uint64_t deadline_ns,
                              std::size_t max_bytes, std::string& out) {
  char buf[2048];
  while (out.find(kHeaderEnd) == std::string::npos) {
    const int wait = remaining_ms(deadline_ns);
    if (wait <= 0) return ReadOutcome::Timeout;
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::Closed;
    }
    if (pr == 0) return ReadOutcome::Timeout;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::Closed;
    }
    if (n == 0) return ReadOutcome::Closed;
    out.append(buf, static_cast<std::size_t>(n));
    if (out.size() > max_bytes) return ReadOutcome::Oversize;
  }
  return ReadOutcome::Ok;
}

/// Parses the request line + headers into `req`; false on malformed input.
bool parse_request(const std::string& raw, HttpRequest& req) {
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return false;
  const std::string line = raw.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return false;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (req.method.empty() || req.target.empty() || req.target[0] != '/') return false;
  if (version.rfind("HTTP/1.", 0) != 0) return false;

  const std::size_t q = req.target.find('?');
  req.path = req.target.substr(0, q);
  req.query = q == std::string::npos ? "" : req.target.substr(q + 1);

  std::size_t pos = line_end + 2;
  while (pos < raw.size()) {
    std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos) eol = raw.size();
    if (eol == pos) break;  // blank line: end of headers
    const std::string header = raw.substr(pos, eol - pos);
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    std::string key = header.substr(0, colon);
    for (char& c : key) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    std::size_t vstart = colon + 1;
    while (vstart < header.size() && header[vstart] == ' ') ++vstart;
    req.headers[key] = header.substr(vstart);
    pos = eol + 2;
  }
  return true;
}

/// Resolves `host` to an IPv4 sockaddr_in (numeric or resolvable name).
bool resolve_ipv4(const std::string& host, std::uint16_t port, sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 || !res) return false;
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return true;
}

}  // namespace

std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && eq > 0) {
      out[pair.substr(0, eq)] = pair.substr(eq + 1);
    } else if (!pair.empty()) {
      out[pair] = "";
    }
    pos = amp + 1;
  }
  return out;
}

std::pair<std::string, std::uint16_t> split_host_port(const std::string& spec) {
  std::string host;
  std::string port_str;
  if (!spec.empty() && spec.front() == '[') {
    // RFC 3986 bracket form: the colons inside the brackets belong to the
    // IPv6 literal, the port follows "]:".
    const std::size_t close = spec.find(']');
    if (close == std::string::npos || close < 2 || close + 2 >= spec.size() ||
        spec[close + 1] != ':') {
      throw std::runtime_error("expected [HOST]:PORT, got '" + spec + "'");
    }
    host = spec.substr(1, close - 1);
    port_str = spec.substr(close + 2);
  } else {
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
      throw std::runtime_error("expected HOST:PORT, got '" + spec + "'");
    }
    host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (*end != '\0' || port > 65535) {
    throw std::runtime_error("invalid port in '" + spec + "'");
  }
  return {std::move(host), static_cast<std::uint16_t>(port)};
}

HttpServer::HttpServer(Options opts) : opts_(std::move(opts)) {
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.max_queue == 0) opts_.max_queue = 1;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

void HttpServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  sockaddr_in addr;
  if (!resolve_ipv4(opts_.host, opts_.port, addr)) {
    throw std::runtime_error("http: cannot resolve host '" + opts_.host + "'");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("http: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("http: cannot listen on " + opts_.host + ":" +
                             std::to_string(opts_.port) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Join the acceptor first so no connection can be enqueued after the
  // workers drain and exit; then wake the workers to finish the queue.
  if (acceptor_.joinable()) acceptor_.join();
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  std::deque<int> leftover;
  {
    std::lock_guard lock(mu_);
    leftover.swap(queue_);
  }
  for (int fd : leftover) {
    write_response(fd, error_response(503, "server shutting down"), false);
    ::close(fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100);
    if (pr <= 0) continue;  // timeout (re-check running_) or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool enqueued = false;
    {
      std::lock_guard lock(mu_);
      if (queue_.size() < opts_.max_queue) {
        queue_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      cv_.notify_one();
    } else {
      // Backpressure: answering 503 here keeps the accept queue drained and
      // tells the scraper to back off, instead of parking accepted sockets.
      write_response(fd, error_response(503, "handler queue full"), false);
      count_request(503);
      served_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
    }
  }
}

void HttpServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] {
        return !queue_.empty() || !running_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        // Drained after stop(): connections accepted before shutdown are
        // still answered above, so an in-flight scrape never sees a reset.
        if (!running_.load(std::memory_order_acquire)) return;
        continue;
      }
      fd = queue_.front();
      queue_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpServer::serve_connection(int fd) {
  const std::uint64_t deadline_ns =
      monotonic_ns() + opts_.read_timeout_ms * 1'000'000ull;
  std::string raw;
  HttpRequest req;
  HttpResponse resp;
  bool head_only = false;
  switch (read_request_head(fd, deadline_ns, opts_.max_request_bytes, raw)) {
    case ReadOutcome::Timeout:
      resp = error_response(408, "request header read timed out");
      break;
    case ReadOutcome::Oversize:
      resp = error_response(431, "request headers exceed limit");
      break;
    case ReadOutcome::Closed:
      // Peer vanished before sending a full request; nothing to answer.
      count_request(400);
      return;
    case ReadOutcome::Ok:
      if (!parse_request(raw, req)) {
        resp = error_response(400, "malformed request");
      } else if (req.method != "GET" && req.method != "HEAD") {
        resp = error_response(405, "only GET and HEAD are supported");
      } else {
        head_only = req.method == "HEAD";
        auto it = routes_.find(req.path);
        if (it == routes_.end()) {
          resp = error_response(404, "no such endpoint: " + req.path);
        } else {
          try {
            resp = it->second(req);
          } catch (const std::exception& e) {
            resp = error_response(500, std::string("handler failed: ") + e.what());
          }
        }
      }
      break;
  }
  write_response(fd, resp, head_only);
  count_request(resp.status);
}

std::optional<FetchResult> http_get(const std::string& host, std::uint16_t port,
                                    const std::string& target,
                                    std::uint64_t timeout_ms,
                                    std::size_t max_body_bytes) {
  sockaddr_in addr;
  if (!resolve_ipv4(host, port, addr)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  const std::uint64_t deadline_ns = monotonic_ns() + timeout_ms * 1'000'000ull;

  // Non-blocking connect under the same deadline: a host that is routable
  // but not answering (dropped SYNs) must hit the caller's timeout, not
  // the kernel's minutes-long connect(2) default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return std::nullopt;
    }
    while (true) {
      const int wait = remaining_ms(deadline_ns);
      if (wait <= 0) {
        ::close(fd);
        return std::nullopt;
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, wait);
      if (pr < 0 && errno == EINTR) continue;
      if (pr <= 0) {
        ::close(fd);
        return std::nullopt;
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return std::nullopt;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; reads poll anyway
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return std::nullopt;
  }

  // Connection: close — the response is everything until EOF.
  std::string raw;
  char buf[4096];
  while (true) {
    const int wait = remaining_ms(deadline_ns);
    if (wait <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait);
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > max_body_bytes) {
      ::close(fd);
      return std::nullopt;
    }
  }
  ::close(fd);

  const std::size_t head_end = raw.find(kHeaderEnd);
  if (head_end == std::string::npos) return std::nullopt;
  const std::size_t line_end = raw.find("\r\n");
  const std::string status_line = raw.substr(0, line_end);
  if (status_line.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos || sp + 4 > status_line.size()) return std::nullopt;
  FetchResult result;
  result.status = std::atoi(status_line.c_str() + sp + 1);
  if (result.status < 100 || result.status > 599) return std::nullopt;

  std::size_t pos = line_end + 2;
  while (pos < head_end) {
    std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > head_end) eol = head_end;
    std::string header = raw.substr(pos, eol - pos);
    const std::size_t colon = header.find(':');
    if (colon != std::string::npos) {
      std::string key = header.substr(0, colon);
      for (char& c : key) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (key == "content-type") {
        std::size_t vstart = colon + 1;
        while (vstart < header.size() && header[vstart] == ' ') ++vstart;
        result.content_type = header.substr(vstart);
      }
    }
    pos = eol + 2;
  }
  result.body = raw.substr(head_end + kHeaderEnd.size());
  return result;
}

}  // namespace intellog::obs::http
