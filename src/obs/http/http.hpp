// Embedded HTTP/1.1 admin server and a matching tiny client.
//
// The telemetry plane needs a live transport: every observatory so far
// published through files (--status-file snapshots, BENCH JSON, collapsed
// stacks), which works for batch runs but not for a long-lived daemon that
// an orchestrator wants to scrape and health-check. This server is the
// smallest thing that does that job correctly:
//
//  - dependency-free POSIX sockets, IPv4, GET/HEAD only, Connection: close
//    (one request per connection — scrapes and probes are all short);
//  - a blocking accept loop on its own thread feeding a bounded queue of
//    accepted connections; a fixed pool of worker threads parses and
//    answers them. A full queue answers 503 immediately instead of letting
//    accepted sockets pile up;
//  - hardened request reading: a total wall-clock deadline over the whole
//    header read (a slowloris client trickling bytes gets 408, not a
//    parked worker) and a hard cap on header bytes (431 on overflow);
//  - graceful stop(): the acceptor quits, queued connections are drained
//    and answered, workers join. The serve daemon calls it from the same
//    drain path its SIGTERM handling already runs.
//
// Routing is exact-match on the decoded path (no patterns — the admin
// plane has eight endpoints). Handlers run on worker threads and must be
// thread-safe; everything they touch here (metrics registry snapshots,
// published status boards) already is.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace intellog::obs::http {

struct HttpRequest {
  std::string method;  ///< "GET" / "HEAD" (anything else is rejected earlier)
  std::string target;  ///< raw request target, e.g. "/profilez?seconds=3"
  std::string path;    ///< target up to '?'
  std::string query;   ///< after '?', "" when absent
  std::map<std::string, std::string> headers;  ///< keys lower-cased
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Parses "k1=v1&k2=v2" (no %-decoding — admin queries are ASCII).
std::map<std::string, std::string> parse_query(const std::string& query);

/// Splits "HOST:PORT" or "[V6HOST]:PORT" (brackets stripped); throws
/// std::runtime_error on a missing/invalid port or unbalanced brackets.
std::pair<std::string, std::uint16_t> split_host_port(const std::string& spec);

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: ephemeral, read back via port()
  std::size_t workers = 2;
  std::size_t max_queue = 64;  ///< accepted-but-unserved connections
  std::uint64_t read_timeout_ms = 5000;   ///< total header-read deadline
  std::size_t max_request_bytes = 16 * 1024;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  using Options = HttpServerOptions;

  explicit HttpServer(Options opts = {});
  ~HttpServer();  ///< calls stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for an exact path. Must precede start().
  void handle(std::string path, Handler handler);

  /// Binds + listens and starts the acceptor and worker threads. Throws
  /// std::runtime_error when the address is unusable.
  void start();
  /// Graceful: stops accepting, drains queued connections, joins all
  /// threads. Idempotent; safe to call without start().
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves an ephemeral request); 0 before start().
  std::uint16_t port() const { return port_; }
  const Options& options() const { return opts_; }
  /// Responses written so far (all statuses), for tests and overhead accounting.
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);

  Options opts_;
  std::map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> queue_;  ///< accepted fds awaiting a worker
};

/// One fetched response; `status` 0 never occurs (transport failures
/// return nullopt from http_get instead).
struct FetchResult {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// Blocking GET with a total wall-clock deadline covering connect + IO
/// (a non-responding host times out instead of parking the caller in
/// connect(2)). nullopt on any transport failure (refused, reset,
/// timeout, bad host) and on a response body larger than
/// `max_body_bytes` — admin-plane answers are bounded, so an unbounded
/// read would only ever buffer garbage.
std::optional<FetchResult> http_get(const std::string& host, std::uint16_t port,
                                    const std::string& target,
                                    std::uint64_t timeout_ms = 5000,
                                    std::size_t max_body_bytes = 8 * 1024 * 1024);

}  // namespace intellog::obs::http
