#include "obs/http/admin.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "obs/flight/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profile/profile.hpp"

namespace intellog::obs::http {

namespace {

constexpr const char* kJsonType = "application/json; charset=utf-8";
// The exposition content type Prometheus scrapers negotiate for.
constexpr const char* kPromType = "text/plain; version=0.0.4; charset=utf-8";

HttpResponse json_response(const common::Json& doc, int status = 200) {
  HttpResponse r;
  r.status = status;
  r.content_type = kJsonType;
  r.body = doc.dump(2) + "\n";
  return r;
}

/// Serves one array-valued key of the status document ([] when the owner
/// has not published that section yet).
HttpResponse status_slice(const StatusBoard& board, const char* key) {
  const auto doc = board.status();
  const common::Json& slice = (*doc)[key];
  return json_response(slice.is_array() ? slice : common::Json::array());
}

// /profilez capture state. Captures serialize on the mutex (a second
// concurrent request gets 409, it does not queue). Stopped sessions are
// retained, not freed: daemon pool threads may still hold frame pointers
// from a finished capture's generation (PROF_FRAMEs opened mid-tick), and
// the profiler's safe-destruction contract requires those threads to
// quiesce first — which a live daemon never does. Keeping the stopped
// trees alive turns that use-after-free into a few KB per manual capture.
std::mutex g_profilez_mu;
std::vector<std::unique_ptr<Profiler>>& retained_sessions() {
  static std::vector<std::unique_ptr<Profiler>> sessions;
  return sessions;
}

HttpResponse profilez(const HttpRequest& req) {
  int seconds = 5;
  const auto params = parse_query(req.query);
  if (auto it = params.find("seconds"); it != params.end()) {
    seconds = std::atoi(it->second.c_str());
    if (seconds < 1) seconds = 1;
    if (seconds > 30) seconds = 30;
  }
  // Losing a concurrent-capture race is a machine-visible condition:
  // answer 409 with a JSON body so pollers can branch on it, not a prose
  // string they would have to grep.
  const auto conflict = [](std::string why) {
    common::Json doc = common::Json::object();
    doc["error"] = "conflict";
    doc["detail"] = std::move(why);
    return json_response(doc, 409);
  };
  std::unique_lock lock(g_profilez_mu, std::try_to_lock);
  if (!lock.owns_lock() || profiler() != nullptr) {
    return conflict("a profiling session is already active");
  }
  std::string collapsed;
  try {
    auto session = std::make_unique<Profiler>();
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    session->stop();
    collapsed = session->collapsed();
    retained_sessions().push_back(std::move(session));
  } catch (const std::exception& e) {
    return conflict(std::string("profiler unavailable: ") + e.what());
  }
  HttpResponse r;
  r.body = std::move(collapsed);
  return r;
}

}  // namespace

common::Json Readiness::to_json() const {
  common::Json doc = common::Json::object();
  doc["ready"] = ready;
  common::Json why = common::Json::array();
  for (const auto& reason : reasons) why.push_back(reason);
  doc["reasons"] = std::move(why);
  return doc;
}

StatusBoard::StatusBoard()
    : status_(std::make_shared<const common::Json>(common::Json::object())) {}

void StatusBoard::publish(common::Json status, Readiness readiness) {
  auto snapshot = std::make_shared<const common::Json>(std::move(status));
  std::lock_guard lock(mu_);
  status_ = std::move(snapshot);
  readiness_ = std::move(readiness);
}

std::shared_ptr<const common::Json> StatusBoard::status() const {
  std::lock_guard lock(mu_);
  return status_;
}

Readiness StatusBoard::readiness() const {
  std::lock_guard lock(mu_);
  return readiness_;
}

void mount_admin_plane(HttpServer& server, const StatusBoard& board) {
  if (MetricsRegistry* reg = registry()) {
    reg->describe("intellog_http_requests_total", "admin-plane responses by status code");
  }

  server.handle("/metrics", [](const HttpRequest&) {
    HttpResponse r;
    const MetricsRegistry* reg = registry();
    if (!reg) {
      r.status = 503;
      r.body = "no metrics registry installed\n";
      return r;
    }
    r.content_type = kPromType;
    r.body = reg->to_prometheus();
    return r;
  });

  server.handle("/status.json", [&board](const HttpRequest&) {
    return json_response(*board.status());
  });
  server.handle("/tenants",
                [&board](const HttpRequest&) { return status_slice(board, "tenants"); });
  server.handle("/alerts",
                [&board](const HttpRequest&) { return status_slice(board, "alerts"); });

  server.handle("/healthz", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  server.handle("/readyz", [&board](const HttpRequest&) {
    const Readiness ready = board.readiness();
    return json_response(ready.to_json(), ready.ready ? 200 : 503);
  });

  server.handle("/profilez", profilez);

  // Live flight-recorder snapshot: the same merged-event JSON shape the
  // blackbox decoder emits, read straight off the in-memory rings.
  server.handle("/flightz", [](const HttpRequest& req) {
    std::size_t max_events = 512;
    const auto params = parse_query(req.query);
    if (auto it = params.find("max"); it != params.end()) {
      const long n = std::atol(it->second.c_str());
      if (n > 0) max_events = static_cast<std::size_t>(n);
    }
    return json_response(flight::flight_snapshot_json(max_events));
  });
}

}  // namespace intellog::obs::http
