// The live admin plane: the eight telemetry endpoints mounted on an
// HttpServer, backed by a StatusBoard the owning daemon publishes into.
//
// Split of responsibilities: the daemon (or streaming detect) keeps doing
// what it already did — build a status document and evaluate alerts on its
// own thread at its own cadence — and additionally publishes each snapshot
// to a StatusBoard. Handlers run on HTTP worker threads and only ever read
// the board (a shared_ptr swap under a mutex) or the process-global
// MetricsRegistry (whose snapshot paths are already thread-safe). Nothing
// the handlers touch is owned by the supervision loop, so a slow scraper
// can never stall a tick and a tick can never tear a scrape.
//
// Endpoints:
//   /metrics       Prometheus text exposition of the installed registry
//   /status.json   last published status document
//   /tenants       the status document's tenants table
//   /alerts        the status document's alerts array (last evaluation)
//   /healthz       liveness: 200 "ok" whenever the server answers at all
//   /readyz        readiness: 200/503 + JSON {"ready", "reasons"}
//   /profilez      on-demand collapsed-stack capture (?seconds=N, 1..30)
//   /flightz       live flight-recorder ring snapshot (?max=N events)
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/http/http.hpp"

namespace intellog::obs::http {

/// Readiness verdict the owner derives from real serve state (breaker
/// states, checkpoint age, backlog saturation). `reasons` lists every
/// failing condition; empty when ready.
struct Readiness {
  bool ready = true;
  std::vector<std::string> reasons;

  common::Json to_json() const;
};

/// Thread-safe publication point between the daemon thread (writer) and
/// HTTP workers (readers). Readers get an immutable snapshot; the writer
/// swaps in a fresh one per flush.
class StatusBoard {
 public:
  StatusBoard();

  void publish(common::Json status, Readiness readiness);
  /// The last published status document (an empty object before the first
  /// publish — endpoints stay answerable from the first accept on).
  std::shared_ptr<const common::Json> status() const;
  Readiness readiness() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const common::Json> status_;
  Readiness readiness_;
};

/// Registers every admin endpoint on `server`. The board must outlive the
/// server. Call before start().
void mount_admin_plane(HttpServer& server, const StatusBoard& board);

}  // namespace intellog::obs::http
