// Bridges common::ThreadPool queue events into the metrics registry.
//
// common cannot depend on obs, so the pool exposes a PoolObserver hook and
// this bridge implements it: queue depth as a process-wide gauge, the
// enqueue→dequeue latency as a histogram, and per-pool lifetime busy/idle
// totals as counters on pool retirement. set_registry() keeps exactly one
// bridge installed while a registry is installed, so `intellog stats`,
// `--metrics` and the profiler report all see pool behavior for free.
#pragma once

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace intellog::obs {

class PoolMetricsBridge final : public common::PoolObserver {
 public:
  explicit PoolMetricsBridge(MetricsRegistry& registry);

  void on_enqueue(std::size_t queue_depth) override;
  void on_dequeue(double delay_ms, std::size_t queue_depth) override;
  void on_retire(std::uint64_t busy_us, std::uint64_t idle_us,
                 std::uint64_t tasks) override;
  void on_shutdown(std::uint64_t drained, std::uint64_t cancelled) override;

 private:
  Gauge* depth_;
  Histogram* delay_ms_;
  Counter* tasks_;
  Counter* busy_us_;
  Counter* idle_us_;
  Counter* pools_retired_;
  Counter* cancelled_;
  Counter* drained_;
};

/// Installs (registry != nullptr) or uninstalls (nullptr) the process
/// PoolObserver bridge. Called by set_registry; the same lifetime contract
/// applies — no pool activity may race an uninstall.
void sync_pool_metrics_bridge(MetricsRegistry* registry);

}  // namespace intellog::obs
