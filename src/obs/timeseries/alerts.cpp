#include "obs/timeseries/alerts.hpp"

#include <sstream>
#include <stdexcept>

namespace intellog::obs::ts {

namespace {

AlertRule::Kind kind_from(const std::string& s) {
  if (s == "gauge_above") return AlertRule::Kind::GaugeAbove;
  if (s == "gauge_below") return AlertRule::Kind::GaugeBelow;
  if (s == "rate_above") return AlertRule::Kind::RateAbove;
  if (s == "burn_rate") return AlertRule::Kind::BurnRate;
  throw std::runtime_error("alert rule: unknown kind '" + s + "'");
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string_view to_string(AlertRule::Kind kind) {
  switch (kind) {
    case AlertRule::Kind::GaugeAbove: return "gauge_above";
    case AlertRule::Kind::GaugeBelow: return "gauge_below";
    case AlertRule::Kind::RateAbove: return "rate_above";
    case AlertRule::Kind::BurnRate: return "burn_rate";
  }
  return "unknown";
}

AlertRule AlertRule::from_json(const common::Json& j) {
  if (!j.is_object()) throw std::runtime_error("alert rule: not a JSON object");
  AlertRule rule;
  if (!j["name"].is_string() || j["name"].as_string().empty()) {
    throw std::runtime_error("alert rule: missing 'name'");
  }
  rule.name = j["name"].as_string();
  if (!j["series"].is_string() || j["series"].as_string().empty()) {
    throw std::runtime_error("alert rule '" + rule.name + "': missing 'series'");
  }
  rule.series = j["series"].as_string();
  if (!j["kind"].is_string()) {
    throw std::runtime_error("alert rule '" + rule.name + "': missing 'kind'");
  }
  rule.kind = kind_from(j["kind"].as_string());
  if (!j["threshold"].is_number()) {
    throw std::runtime_error("alert rule '" + rule.name + "': missing 'threshold'");
  }
  rule.threshold = j["threshold"].as_double();
  if (j.contains("window_ms")) {
    if (!j["window_ms"].is_number() || j["window_ms"].as_int() <= 0) {
      throw std::runtime_error("alert rule '" + rule.name + "': bad 'window_ms'");
    }
    rule.window_ms = static_cast<std::uint64_t>(j["window_ms"].as_int());
  }
  if (j.contains("long_window_ms")) {
    if (!j["long_window_ms"].is_number() || j["long_window_ms"].as_int() <= 0) {
      throw std::runtime_error("alert rule '" + rule.name + "': bad 'long_window_ms'");
    }
    rule.long_window_ms = static_cast<std::uint64_t>(j["long_window_ms"].as_int());
  }
  if (rule.kind == Kind::BurnRate) {
    if (rule.long_window_ms == 0) rule.long_window_ms = rule.window_ms * 10;
    if (rule.long_window_ms <= rule.window_ms) {
      throw std::runtime_error("alert rule '" + rule.name +
                               "': burn_rate needs long_window_ms > window_ms");
    }
  }
  if (j.contains("for_ms")) {
    if (!j["for_ms"].is_number() || j["for_ms"].as_int() < 0) {
      throw std::runtime_error("alert rule '" + rule.name + "': bad 'for_ms'");
    }
    rule.for_ms = static_cast<std::uint64_t>(j["for_ms"].as_int());
  }
  return rule;
}

common::Json AlertRule::to_json() const {
  common::Json j = common::Json::object();
  j["name"] = name;
  j["series"] = series;
  j["kind"] = std::string(to_string(kind));
  j["threshold"] = threshold;
  j["window_ms"] = static_cast<std::int64_t>(window_ms);
  if (kind == Kind::BurnRate) j["long_window_ms"] = static_cast<std::int64_t>(long_window_ms);
  j["for_ms"] = static_cast<std::int64_t>(for_ms);
  return j;
}

common::Json Alert::to_json() const {
  common::Json j = common::Json::object();
  j["rule"] = rule;
  j["series"] = series;
  j["firing"] = firing;
  j["pending"] = pending;
  j["value"] = value;
  j["threshold"] = threshold;
  if (firing || pending) j["since_ms"] = static_cast<std::int64_t>(since_ms);
  j["description"] = description;
  return j;
}

void AlertEngine::add_rule(AlertRule rule) {
  rules_.push_back(std::move(rule));
  held_since_.clear();  // state is positional; re-seeded on next evaluate()
  last_.clear();
}

std::vector<AlertRule> AlertEngine::default_rules() {
  // Thresholds are deliberately conservative: these fire on clearly
  // pathological streams (a quarantine burst, cap-triggered evictions,
  // model drift showing up as unmatched keys), not on routine noise.
  std::vector<AlertRule> rules;
  {
    AlertRule r;
    r.name = "quarantine-burst";
    r.series = "intellog_ingest_quarantined_total{}";
    r.kind = AlertRule::Kind::RateAbove;
    r.threshold = 5.0;  // > 5 quarantined lines/s sustained
    r.window_ms = 30'000;
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "session-evictions";
    r.series = "intellog_online_sessions_closed_total{reason=\"evicted\"}";
    r.kind = AlertRule::Kind::RateAbove;
    r.threshold = 0.0;  // any cap-triggered eviction is an incident
    r.window_ms = 60'000;
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "unexpected-key-rate";
    r.series = "intellog_online_unexpected_total{}";
    r.kind = AlertRule::Kind::RateAbove;
    r.threshold = 10.0;  // > 10 unmatched records/s: model no longer fits
    r.window_ms = 30'000;
    rules.push_back(std::move(r));
  }
  {
    // Burn-rate style: unexpected findings accelerating vs their own
    // recent baseline — drift that absolute thresholds miss on quiet
    // streams.
    AlertRule r;
    r.name = "unexpected-key-burn";
    r.series = "intellog_online_unexpected_total{}";
    r.kind = AlertRule::Kind::BurnRate;
    r.threshold = 4.0;  // short-window rate > 4x the long-window rate
    r.window_ms = 30'000;
    r.long_window_ms = 300'000;
    rules.push_back(std::move(r));
  }
  {
    AlertRule r;
    r.name = "degraded-reports";
    r.series = "intellog_online_degraded_reports_total{}";
    r.kind = AlertRule::Kind::RateAbove;
    r.threshold = 0.0;  // any degraded report means limits are biting
    r.window_ms = 60'000;
    rules.push_back(std::move(r));
  }
  return rules;
}

std::vector<AlertRule> AlertEngine::serve_rules() {
  // Daemon self-monitoring on top of the detect-path stock rules. Both
  // gauges are published every serve tick, so short windows suffice.
  std::vector<AlertRule> rules = default_rules();
  {
    // Worst tenant backlog as a fraction of its shed threshold:
    // sustained > 0.8 means admission cannot keep up and shedding is
    // imminent.
    AlertRule r;
    r.name = "serve-queue-saturation";
    r.series = "intellog_serve_queue_saturation_ratio{}";
    r.kind = AlertRule::Kind::GaugeAbove;
    r.threshold = 0.8;
    r.window_ms = 10'000;
    rules.push_back(std::move(r));
  }
  {
    // Any tenant breaker open (or half-open) is an incident for that
    // tenant even though the daemon as a whole keeps serving.
    AlertRule r;
    r.name = "serve-breaker-open";
    r.series = "intellog_serve_breakers_open{}";
    r.kind = AlertRule::Kind::GaugeAbove;
    r.threshold = 0.0;
    r.window_ms = 10'000;
    rules.push_back(std::move(r));
  }
  return rules;
}

std::vector<AlertRule> AlertEngine::rules_from_json(const common::Json& doc) {
  const common::Json* arr = &doc;
  if (doc.is_object()) {
    if (!doc["rules"].is_array()) {
      throw std::runtime_error("alert rules: expected an array or {\"rules\": [...]}");
    }
    arr = &doc["rules"];
  } else if (!doc.is_array()) {
    throw std::runtime_error("alert rules: expected an array or {\"rules\": [...]}");
  }
  std::vector<AlertRule> rules;
  for (const common::Json& j : arr->as_array()) rules.push_back(AlertRule::from_json(j));
  return rules;
}

const std::vector<Alert>& AlertEngine::evaluate(const TimeSeriesStore& store,
                                                std::uint64_t now_ms) {
  if (held_since_.size() != rules_.size()) {
    held_since_.assign(rules_.size(), std::nullopt);
  }
  last_.clear();
  last_.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    Alert alert;
    alert.rule = rule.name;
    alert.series = rule.series;
    alert.threshold = rule.threshold;

    std::optional<double> stat;
    std::string stat_name;
    switch (rule.kind) {
      case AlertRule::Kind::GaugeAbove:
      case AlertRule::Kind::GaugeBelow:
        stat = store.avg(rule.series, now_ms, rule.window_ms);
        stat_name = "avg";
        break;
      case AlertRule::Kind::RateAbove:
        stat = store.rate_per_s(rule.series, now_ms, rule.window_ms);
        stat_name = "rate/s";
        break;
      case AlertRule::Kind::BurnRate: {
        const auto short_rate = store.rate_per_s(rule.series, now_ms, rule.window_ms);
        const auto long_rate = store.rate_per_s(rule.series, now_ms, rule.long_window_ms);
        // A zero long-run baseline makes any short-run activity an
        // infinite burn; report the short rate against the threshold
        // directly in that case (still "accelerating from nothing").
        if (short_rate && long_rate) {
          stat = *long_rate > 0 ? *short_rate / *long_rate
                                : (*short_rate > 0 ? rule.threshold + 1.0 : 0.0);
        }
        stat_name = "burn";
        break;
      }
    }

    bool holds = false;
    if (stat) {
      alert.value = *stat;
      holds = rule.kind == AlertRule::Kind::GaugeBelow ? *stat < rule.threshold
                                                       : *stat > rule.threshold;
    }
    alert.description = stat_name + " " + fmt_double(alert.value) +
                        (rule.kind == AlertRule::Kind::GaugeBelow ? " < " : " > ") +
                        fmt_double(rule.threshold) + " on " + rule.series;

    if (holds) {
      if (!held_since_[i]) held_since_[i] = now_ms;
      alert.since_ms = *held_since_[i];
      const std::uint64_t held_for = now_ms - *held_since_[i];
      alert.firing = held_for >= rule.for_ms;
      alert.pending = !alert.firing;
    } else {
      held_since_[i] = std::nullopt;
    }
    last_.push_back(std::move(alert));
  }
  return last_;
}

std::size_t AlertEngine::firing_count() const {
  std::size_t n = 0;
  for (const Alert& a : last_) n += a.firing;
  return n;
}

common::Json AlertEngine::to_json() const {
  common::Json arr = common::Json::array();
  for (const Alert& a : last_) arr.push_back(a.to_json());
  return arr;
}

}  // namespace intellog::obs::ts
