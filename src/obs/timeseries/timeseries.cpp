#include "obs/timeseries/timeseries.hpp"

#include <algorithm>
#include <cmath>

namespace intellog::obs::ts {

RingSeries::RingSeries(std::size_t capacity) : buf_(std::max<std::size_t>(1, capacity)) {}

void RingSeries::push(std::uint64_t t_ms, double value) {
  buf_[head_] = Sample{t_ms, value};
  head_ = (head_ + 1) % buf_.size();
  if (size_ < buf_.size()) ++size_;
}

std::optional<Sample> RingSeries::latest() const {
  if (size_ == 0) return std::nullopt;
  return buf_[(head_ + buf_.size() - 1) % buf_.size()];
}

std::vector<Sample> RingSeries::window(std::uint64_t now_ms, std::uint64_t window_ms) const {
  std::vector<Sample> out;
  out.reserve(size_);
  const std::uint64_t cutoff = window_ms == 0 || window_ms > now_ms ? 0 : now_ms - window_ms;
  const std::size_t start = (head_ + buf_.size() - size_) % buf_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    const Sample& s = buf_[(start + i) % buf_.size()];
    if (s.t_ms >= cutoff && s.t_ms <= now_ms) out.push_back(s);
  }
  return out;
}

std::optional<double> window_avg(const std::vector<Sample>& samples) {
  if (samples.empty()) return std::nullopt;
  double sum = 0;
  for (const Sample& s : samples) sum += s.value;
  return sum / static_cast<double>(samples.size());
}

std::optional<double> window_min(const std::vector<Sample>& samples) {
  if (samples.empty()) return std::nullopt;
  double m = samples.front().value;
  for (const Sample& s : samples) m = std::min(m, s.value);
  return m;
}

std::optional<double> window_max(const std::vector<Sample>& samples) {
  if (samples.empty()) return std::nullopt;
  double m = samples.front().value;
  for (const Sample& s : samples) m = std::max(m, s.value);
  return m;
}

std::optional<double> window_quantile(const std::vector<Sample>& samples, double q) {
  if (samples.empty() || q < 0.0 || q > 1.0) return std::nullopt;
  std::vector<double> values;
  values.reserve(samples.size());
  for (const Sample& s : samples) values.push_back(s.value);
  std::sort(values.begin(), values.end());
  // Nearest-rank: ceil(q * n), 1-based; q=0 -> first.
  const std::size_t rank =
      q == 0.0 ? 1
               : static_cast<std::size_t>(
                     std::ceil(q * static_cast<double>(values.size())));
  return values[std::min(rank, values.size()) - 1];
}

std::optional<double> window_rate_per_s(const std::vector<Sample>& samples) {
  if (samples.size() < 2) return std::nullopt;
  const Sample& first = samples.front();
  const Sample& last = samples.back();
  if (last.t_ms <= first.t_ms) return std::nullopt;
  const double delta = last.value - first.value;
  const double dt_s = static_cast<double>(last.t_ms - first.t_ms) / 1000.0;
  return delta < 0 ? 0.0 : delta / dt_s;  // negative = counter reset
}

TimeSeriesStore::TimeSeriesStore(std::size_t capacity_per_series)
    : capacity_(std::max<std::size_t>(2, capacity_per_series)) {}

void TimeSeriesStore::push(const std::string& series, std::uint64_t t_ms, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) it = series_.emplace(series, RingSeries(capacity_)).first;
  it->second.push(t_ms, value);
}

void TimeSeriesStore::observe_registry(const MetricsRegistry& reg, std::uint64_t t_ms) {
  // The registry's JSON export is the canonical series naming (counter and
  // gauge values are plain numbers; histograms expose their sample count
  // as "<key>_count" so rate rules can watch observation volume).
  const common::Json snapshot = reg.to_json();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, m] : snapshot.as_object()) {
    if (!m.is_object() || !m["type"].is_string()) continue;
    const std::string& type = m["type"].as_string();
    std::string name = key;
    double value = 0;
    if (type == "counter" || type == "gauge") {
      if (!m["value"].is_number()) continue;
      value = m["value"].as_double();
    } else if (type == "histogram") {
      if (!m["count"].is_number()) continue;
      name += "_count";
      value = m["count"].as_double();
    } else {
      continue;
    }
    auto it = series_.find(name);
    if (it == series_.end()) it = series_.emplace(name, RingSeries(capacity_)).first;
    it->second.push(t_ms, value);
  }
}

std::size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::vector<std::string> TimeSeriesStore::series_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    (void)s;
    out.push_back(name);
  }
  return out;
}

std::optional<Sample> TimeSeriesStore::latest(const std::string& series) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(series);
  return it == series_.end() ? std::nullopt : it->second.latest();
}

std::vector<Sample> TimeSeriesStore::window_locked(const std::string& series,
                                                   std::uint64_t now_ms,
                                                   std::uint64_t window_ms) const {
  const auto it = series_.find(series);
  if (it == series_.end()) return {};
  return it->second.window(now_ms, window_ms);
}

std::optional<double> TimeSeriesStore::rate_per_s(const std::string& series,
                                                  std::uint64_t now_ms,
                                                  std::uint64_t window_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_rate_per_s(window_locked(series, now_ms, window_ms));
}

std::optional<double> TimeSeriesStore::avg(const std::string& series, std::uint64_t now_ms,
                                           std::uint64_t window_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_avg(window_locked(series, now_ms, window_ms));
}

std::optional<double> TimeSeriesStore::quantile(const std::string& series, double q,
                                                std::uint64_t now_ms,
                                                std::uint64_t window_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_quantile(window_locked(series, now_ms, window_ms), q);
}

common::Json TimeSeriesStore::to_json(std::uint64_t now_ms, std::uint64_t window_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  common::Json doc = common::Json::object();
  common::Json series = common::Json::object();
  for (const auto& [name, ring] : series_) {
    const std::vector<Sample> samples =
        now_ms == 0 ? ring.window(UINT64_MAX, 0) : ring.window(now_ms, window_ms);
    common::Json arr = common::Json::array();
    for (const Sample& s : samples) {
      common::Json pair = common::Json::array();
      pair.push_back(static_cast<std::int64_t>(s.t_ms));
      pair.push_back(s.value);
      arr.push_back(std::move(pair));
    }
    series[name] = std::move(arr);
  }
  doc["series"] = std::move(series);
  return doc;
}

}  // namespace intellog::obs::ts
