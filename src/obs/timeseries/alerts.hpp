// Alert rules over windowed time-series telemetry.
//
// A rule names one series and a windowed condition; the engine evaluates
// all rules against a TimeSeriesStore and keeps per-rule state so a
// condition must hold for `for_ms` of stream time before the alert fires
// (Prometheus' `for:` semantics — one noisy sample is not an incident).
// Firing alerts land in the --status-file snapshot and the `intellog top`
// view; they are observability, not control flow — nothing is throttled
// or killed by an alert.
//
// Rule grammar (JSON, one object per rule; see DESIGN.md):
//   {"name": "quarantine-burst",
//    "series": "intellog_ingest_quarantined_total",
//    "kind": "rate_above",            // gauge_above | gauge_below |
//                                     // rate_above  | burn_rate
//    "threshold": 5.0,                // units: value (gauge_*), value/s
//                                     // (rate_above), short/long ratio
//                                     // (burn_rate)
//    "window_ms": 30000,              // evaluation window (short window
//                                     // for burn_rate)
//    "long_window_ms": 300000,        // burn_rate only
//    "for_ms": 0}                     // condition must hold this long
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/timeseries/timeseries.hpp"

namespace intellog::obs::ts {

struct AlertRule {
  enum class Kind { GaugeAbove, GaugeBelow, RateAbove, BurnRate };

  std::string name;    ///< stable rule id (shows up in status/top)
  std::string series;  ///< registry JSON key ("name{label=\"v\"}")
  Kind kind = Kind::GaugeAbove;
  double threshold = 0.0;
  std::uint64_t window_ms = 30'000;      ///< evaluation (short) window
  std::uint64_t long_window_ms = 0;      ///< burn_rate baseline window
  std::uint64_t for_ms = 0;              ///< hold time before firing

  /// Parses one rule object; throws std::runtime_error naming the missing
  /// or malformed field.
  static AlertRule from_json(const common::Json& j);
  common::Json to_json() const;
};

std::string_view to_string(AlertRule::Kind kind);

/// One rule's evaluation result at a point in time.
struct Alert {
  std::string rule;
  std::string series;
  bool firing = false;
  bool pending = false;       ///< condition holds, for_ms not yet elapsed
  double value = 0.0;         ///< the observed statistic (0 when no data)
  double threshold = 0.0;
  std::uint64_t since_ms = 0; ///< when the condition started holding
  std::string description;    ///< human-readable "<stat> <op> <threshold>"

  common::Json to_json() const;
};

/// Evaluates rules against a store; stateful across evaluate() calls for
/// `for_ms` tracking. Not thread-safe (one owner, the status-flush loop).
class AlertEngine {
 public:
  AlertEngine() = default;
  explicit AlertEngine(std::vector<AlertRule> rules) : rules_(std::move(rules)) {}

  void add_rule(AlertRule rule);
  const std::vector<AlertRule>& rules() const { return rules_; }

  /// The stock self-monitoring rules wired into `intellog detect`
  /// streaming mode: quarantine growth, cap-triggered session eviction,
  /// unexpected-key (no-Intel-Key-match) rate, and degraded reports.
  static std::vector<AlertRule> default_rules();

  /// The stock rules for the `intellog serve` daemon, layered on top of
  /// default_rules(): spool backlog saturation and tenant circuit breakers
  /// stuck open.
  static std::vector<AlertRule> serve_rules();

  /// Parses a rules file: either a JSON array of rule objects or
  /// {"rules": [...]}. Throws std::runtime_error on malformed input.
  static std::vector<AlertRule> rules_from_json(const common::Json& doc);

  /// Evaluates every rule at `now_ms`. Rules whose series has no data in
  /// the window report not-firing with value 0 (absence of telemetry is
  /// not an incident). Results are in rule order; the last evaluation is
  /// retained for to_json().
  const std::vector<Alert>& evaluate(const TimeSeriesStore& store, std::uint64_t now_ms);

  /// Last evaluation's alerts (empty array before the first evaluate()).
  const std::vector<Alert>& alerts() const { return last_; }
  std::size_t firing_count() const;

  /// JSON array of the last evaluation, every rule included (firing or
  /// not) so a dashboard can show rule health, not just incidents.
  common::Json to_json() const;

 private:
  std::vector<AlertRule> rules_;
  std::vector<Alert> last_;
  /// rule index -> stream time the condition started holding (nullopt:
  /// condition currently false).
  std::vector<std::optional<std::uint64_t>> held_since_;
};

}  // namespace intellog::obs::ts
