// Time-series telemetry: bounded ring-buffer series with windowed
// aggregation (the Quality Observatory's memory of recent behaviour).
//
// The MetricsRegistry holds *current* values; alerting and drift analysis
// need *recent history* — "how fast is the quarantine counter growing over
// the last 30 s", "what was the p95 open-session count this minute". A
// TimeSeriesStore keeps a fixed-capacity ring of (timestamp, value)
// samples per series, fed by periodic observe_registry() snapshots of the
// installed counters and gauges. Ingestion is O(1) per sample and never
// allocates after a series' ring exists; memory is strictly bounded by
// series_count * capacity.
//
// Series are keyed by the same "name{label=\"v\",...}" strings the
// registry's JSON export uses, so a rule written against the JSON snapshot
// addresses the same series here.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace intellog::obs::ts {

/// One (time, value) observation.
struct Sample {
  std::uint64_t t_ms = 0;
  double value = 0.0;
};

/// Fixed-capacity ring of samples in arrival order. Push is O(1); the
/// oldest sample is overwritten once the ring is full.
class RingSeries {
 public:
  explicit RingSeries(std::size_t capacity);

  void push(std::uint64_t t_ms, double value);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  bool empty() const { return size_ == 0; }

  /// Latest sample (nullopt when empty).
  std::optional<Sample> latest() const;

  /// Samples with t_ms in [now_ms - window_ms, now_ms], oldest first.
  /// window_ms == 0 returns every retained sample.
  std::vector<Sample> window(std::uint64_t now_ms, std::uint64_t window_ms) const;

 private:
  std::vector<Sample> buf_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;
};

/// Windowed aggregates over a sample vector (shared by store queries and
/// the alert engine). All return nullopt when the input cannot support the
/// statistic (empty window; rate needs two samples spanning time).
std::optional<double> window_avg(const std::vector<Sample>& samples);
std::optional<double> window_min(const std::vector<Sample>& samples);
std::optional<double> window_max(const std::vector<Sample>& samples);
/// q in [0,1]; nearest-rank quantile over the window's values.
std::optional<double> window_quantile(const std::vector<Sample>& samples, double q);
/// Per-second growth between the first and last sample of the window —
/// the counter-rate statistic. A negative delta (counter reset, e.g. a
/// fresh registry) clamps to 0 rather than reporting a negative rate.
std::optional<double> window_rate_per_s(const std::vector<Sample>& samples);

/// Named ring-buffer series with windowed queries. Thread-safe: one mutex
/// guards the map; snapshots happen at status-flush cadence (seconds), so
/// the lock is cold — hot paths never touch the store.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t capacity_per_series = 512);

  /// Appends one sample to `series` (created on first use).
  void push(const std::string& series, std::uint64_t t_ms, double value);

  /// Samples every counter and gauge of `reg` at time `t_ms`, keyed
  /// exactly as the registry's JSON export keys them. Histograms
  /// contribute their _count (as a counter-like series) so rate rules can
  /// target them too.
  void observe_registry(const MetricsRegistry& reg, std::uint64_t t_ms);

  std::size_t series_count() const;
  std::vector<std::string> series_names() const;
  std::optional<Sample> latest(const std::string& series) const;

  std::optional<double> rate_per_s(const std::string& series, std::uint64_t now_ms,
                                   std::uint64_t window_ms) const;
  std::optional<double> avg(const std::string& series, std::uint64_t now_ms,
                            std::uint64_t window_ms) const;
  std::optional<double> quantile(const std::string& series, double q, std::uint64_t now_ms,
                                 std::uint64_t window_ms) const;

  /// {"series": {name: [[t_ms, v], ...]}, ...} — oldest first, capped by
  /// each ring's capacity. Deterministic (map order).
  common::Json to_json(std::uint64_t now_ms = 0, std::uint64_t window_ms = 0) const;

 private:
  std::vector<Sample> window_locked(const std::string& series, std::uint64_t now_ms,
                                    std::uint64_t window_ms) const;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::map<std::string, RingSeries> series_;
};

}  // namespace intellog::obs::ts
