#include "obs/export/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/explain.hpp"

namespace intellog::obs {

namespace {

using core::GroupSpanView;
using core::KeyHitView;
using core::SubroutineView;
using core::WorkflowView;

std::vector<WorkflowView> build_views(const core::IntelLog& model,
                                      std::span<const logparse::Session> sessions) {
  std::vector<WorkflowView> views;
  views.reserve(sessions.size());
  for (const logparse::Session& s : sessions) {
    views.push_back(core::build_workflow_view(model, s));
  }
  return views;
}

/// Earliest record timestamp across all sessions (the trace's t=0).
std::uint64_t epoch_ms(const std::vector<WorkflowView>& views) {
  std::uint64_t t0 = UINT64_MAX;
  for (const WorkflowView& v : views) {
    if (!v.groups.empty() || v.last_ms != 0 || v.first_ms != 0) {
      t0 = std::min(t0, v.first_ms);
    }
  }
  return t0 == UINT64_MAX ? 0 : t0;
}

// --- Chrome trace-event format ----------------------------------------------

common::Json meta_event(int pid, int tid, const char* what, const std::string& value) {
  common::Json m = common::Json::object();
  m["ph"] = "M";
  m["pid"] = pid;
  m["tid"] = tid;
  m["name"] = what;
  common::Json args = common::Json::object();
  args["name"] = value;
  m["args"] = std::move(args);
  return m;
}

common::Json complete_event(int pid, int tid, const std::string& name, const char* category,
                            std::uint64_t ts_us, std::uint64_t dur_us) {
  common::Json x = common::Json::object();
  x["ph"] = "X";
  x["pid"] = pid;
  x["tid"] = tid;
  x["name"] = name;
  x["cat"] = category;
  x["ts"] = static_cast<std::int64_t>(ts_us);
  // Zero-length spans (single-message lifespans) get 1µs so every span
  // renders; the paired begin/end stays ordered.
  x["dur"] = static_cast<std::int64_t>(dur_us == 0 ? 1 : dur_us);
  return x;
}

common::Json instant_event(int pid, int tid, const std::string& name, std::uint64_t ts_us) {
  common::Json i = common::Json::object();
  i["ph"] = "i";
  i["pid"] = pid;
  i["tid"] = tid;
  i["name"] = name;
  i["cat"] = "intel-key";
  i["s"] = "t";  // thread-scoped instant
  i["ts"] = static_cast<std::int64_t>(ts_us);
  return i;
}

// --- OTLP-style ids ----------------------------------------------------------

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 0xCBF29CE484222325ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

/// 16-byte trace id (32 hex chars) from the session path.
std::string trace_id(const std::string& path) {
  return hex16(fnv1a(path)) + hex16(fnv1a(path, 0x84222325CBF29CE4ull));
}

/// 8-byte span id (16 hex chars) from the span path. The OTLP spec forbids
/// the all-zero id; FNV of a non-empty path never produces it in practice,
/// but guard anyway.
std::string span_id(const std::string& path) {
  const std::uint64_t h = fnv1a(path);
  return hex16(h == 0 ? 1 : h);
}

common::Json otlp_attr(const char* key, const std::string& value) {
  common::Json a = common::Json::object();
  a["key"] = key;
  common::Json v = common::Json::object();
  v["stringValue"] = value;
  a["value"] = std::move(v);
  return a;
}

common::Json otlp_attr_int(const char* key, std::int64_t value) {
  common::Json a = common::Json::object();
  a["key"] = key;
  common::Json v = common::Json::object();
  // OTLP JSON encodes 64-bit integers as strings.
  v["intValue"] = std::to_string(value);
  a["value"] = std::move(v);
  return a;
}

std::string unix_nano(std::uint64_t ms) { return std::to_string(ms * 1000000ull); }

common::Json otlp_span(const std::string& tid, const std::string& sid,
                       const std::string& parent_sid, const std::string& name,
                       std::uint64_t first_ms, std::uint64_t last_ms) {
  common::Json s = common::Json::object();
  s["traceId"] = tid;
  s["spanId"] = sid;
  if (!parent_sid.empty()) s["parentSpanId"] = parent_sid;
  s["name"] = name;
  s["kind"] = 1;  // SPAN_KIND_INTERNAL
  s["startTimeUnixNano"] = unix_nano(first_ms);
  // A single-message span still needs end > start to be a valid interval.
  s["endTimeUnixNano"] = unix_nano(last_ms > first_ms ? last_ms : first_ms + 1);
  return s;
}

}  // namespace

common::Json hwgraph_chrome_trace(const core::IntelLog& model,
                                  std::span<const logparse::Session> sessions) {
  const std::vector<WorkflowView> views = build_views(model, sessions);
  const std::uint64_t t0 = epoch_ms(views);
  const auto us = [t0](std::uint64_t ms) { return (ms - t0) * 1000; };

  common::Json events = common::Json::array();
  for (std::size_t si = 0; si < views.size(); ++si) {
    const WorkflowView& view = views[si];
    const int pid = static_cast<int>(si) + 1;
    std::string proc = view.container_id;
    if (!view.system.empty()) proc += " (" + view.system + ")";
    events.push_back(meta_event(pid, 0, "process_name", proc));

    for (std::size_t gi = 0; gi < view.groups.size(); ++gi) {
      const GroupSpanView& gv = view.groups[gi];
      const int tid = static_cast<int>(gi) + 1;
      events.push_back(meta_event(pid, tid, "thread_name", "group " + gv.group));

      // Parent span: the entity group's lifespan on its own track.
      common::Json span = complete_event(pid, tid, gv.group, "entity-group",
                                         us(gv.first_ms), (gv.last_ms - gv.first_ms) * 1000);
      common::Json args = common::Json::object();
      args["messages"] = gv.message_count;
      args["subroutines"] = gv.subroutines.size();
      if (!view.source_file.empty()) args["source_file"] = view.source_file;
      span["args"] = std::move(args);
      events.push_back(std::move(span));

      // Child spans: one per subroutine execution, nested inside the
      // lifespan on the same track.
      for (const SubroutineView& sv : gv.subroutines) {
        common::Json sub = complete_event(pid, tid, sv.name(), "subroutine", us(sv.first_ms),
                                          (sv.last_ms - sv.first_ms) * 1000);
        common::Json sargs = common::Json::object();
        std::string ids;
        for (const std::string& v : sv.id_values) {
          if (!ids.empty()) ids += " ";
          ids += v;
        }
        sargs["ids"] = ids;
        sargs["hits"] = sv.hits.size();
        sub["args"] = std::move(sargs);
        events.push_back(std::move(sub));
      }

      // Instant events: every Intel-Key hit in the group, once.
      for (const KeyHitView& hit : gv.hits) {
        events.push_back(
            instant_event(pid, tid, "key " + std::to_string(hit.key_id), us(hit.timestamp_ms)));
      }
    }
  }

  common::Json doc = common::Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

common::Json hwgraph_otlp_json(const core::IntelLog& model,
                               std::span<const logparse::Session> sessions) {
  const std::vector<WorkflowView> views = build_views(model, sessions);

  common::Json resource_spans = common::Json::array();
  for (const WorkflowView& view : views) {
    const std::string tid = trace_id("session/" + view.container_id);
    const std::string session_sid = span_id("session/" + view.container_id);

    common::Json spans = common::Json::array();
    // Root span: the whole session.
    {
      common::Json root = otlp_span(tid, session_sid, "", "session " + view.container_id,
                                    view.first_ms, view.last_ms);
      common::Json attrs = common::Json::array();
      attrs.push_back(otlp_attr_int("intellog.groups", static_cast<std::int64_t>(view.groups.size())));
      root["attributes"] = std::move(attrs);
      spans.push_back(std::move(root));
    }

    // Group spans parent onto the trained containment tree where the
    // parent group also appeared in this session, else onto the root.
    std::map<std::string, std::string> group_sid;
    for (const GroupSpanView& gv : view.groups) {
      group_sid[gv.group] = span_id("session/" + view.container_id + "/group/" + gv.group);
    }
    for (const GroupSpanView& gv : view.groups) {
      const std::string parent_group = model.hw_graph().parent_of(gv.group);
      const auto pit = group_sid.find(parent_group);
      const std::string parent_sid = pit == group_sid.end() ? session_sid : pit->second;
      common::Json gs =
          otlp_span(tid, group_sid[gv.group], parent_sid, gv.group, gv.first_ms, gv.last_ms);
      common::Json attrs = common::Json::array();
      attrs.push_back(otlp_attr("intellog.kind", "entity-group"));
      attrs.push_back(otlp_attr_int("intellog.messages", static_cast<std::int64_t>(gv.message_count)));
      gs["attributes"] = std::move(attrs);
      // Key hits as span events on the group span.
      common::Json events = common::Json::array();
      for (const KeyHitView& hit : gv.hits) {
        common::Json ev = common::Json::object();
        ev["timeUnixNano"] = unix_nano(hit.timestamp_ms);
        ev["name"] = "key " + std::to_string(hit.key_id);
        events.push_back(std::move(ev));
      }
      if (!events.as_array().empty()) gs["events"] = std::move(events);
      spans.push_back(std::move(gs));

      for (std::size_t subi = 0; subi < gv.subroutines.size(); ++subi) {
        const SubroutineView& sv = gv.subroutines[subi];
        const std::string sub_sid = span_id("session/" + view.container_id + "/group/" +
                                            gv.group + "/sub/" + std::to_string(subi));
        common::Json ss = otlp_span(tid, sub_sid, group_sid[gv.group], sv.name(), sv.first_ms,
                                    sv.last_ms);
        common::Json sattrs = common::Json::array();
        sattrs.push_back(otlp_attr("intellog.kind", "subroutine"));
        sattrs.push_back(otlp_attr_int("intellog.hits", static_cast<std::int64_t>(sv.hits.size())));
        ss["attributes"] = std::move(sattrs);
        spans.push_back(std::move(ss));
      }
    }

    common::Json scope = common::Json::object();
    common::Json scope_name = common::Json::object();
    scope_name["name"] = "intellog.hwgraph";
    scope["scope"] = std::move(scope_name);
    scope["spans"] = std::move(spans);
    common::Json scope_spans = common::Json::array();
    scope_spans.push_back(std::move(scope));

    common::Json resource = common::Json::object();
    common::Json rattrs = common::Json::array();
    rattrs.push_back(otlp_attr("service.name", "intellog"));
    rattrs.push_back(otlp_attr("container.id", view.container_id));
    if (!view.system.empty()) rattrs.push_back(otlp_attr("intellog.system", view.system));
    if (!view.source_file.empty()) {
      rattrs.push_back(otlp_attr("intellog.source_file", view.source_file));
    }
    resource["attributes"] = std::move(rattrs);

    common::Json rs = common::Json::object();
    rs["resource"] = std::move(resource);
    rs["scopeSpans"] = std::move(scope_spans);
    resource_spans.push_back(std::move(rs));
  }

  common::Json doc = common::Json::object();
  doc["resourceSpans"] = std::move(resource_spans);
  return doc;
}

common::Json flight_chrome_trace(const flight::FlightDump& dump) {
  // t=0 is the oldest surviving event; events are already time-sorted.
  std::uint64_t t0 = UINT64_MAX;
  for (const flight::DecodedEvent& e : dump.events) t0 = std::min(t0, e.steady_ns);
  if (t0 == UINT64_MAX) t0 = 0;
  const auto us = [t0](std::uint64_t ns) { return (ns - t0) / 1000; };

  constexpr int kPid = 1;
  common::Json events = common::Json::array();

  // One thread track per ring slot, named by the OS thread id so the trace
  // lines up with gdb/perf output from the same process.
  std::vector<std::uint32_t> seen_slots;
  for (const flight::DecodedEvent& e : dump.events) {
    if (std::find(seen_slots.begin(), seen_slots.end(), e.slot) == seen_slots.end()) {
      seen_slots.push_back(e.slot);
      events.push_back(meta_event(kPid, static_cast<int>(e.slot) + 1, "thread_name",
                                  "ring " + std::to_string(e.slot) + " (tid " +
                                      std::to_string(e.os_tid) + ")"));
    }
  }

  const auto duration_event = [](const char* ph, int tid, const std::string& name,
                                 const char* category, std::uint64_t ts_us) {
    common::Json d = common::Json::object();
    d["ph"] = ph;
    d["pid"] = kPid;
    d["tid"] = tid;
    d["name"] = name;
    d["cat"] = category;
    d["ts"] = static_cast<std::int64_t>(ts_us);
    return d;
  };

  for (const flight::DecodedEvent& e : dump.events) {
    const flight::FlightEventInfo& info = flight::event_info(e.id);
    const int tid = static_cast<int>(e.slot) + 1;
    const std::uint64_t ts = us(e.steady_ns);

    if (e.id == flight::FlightEventId::kDetectShardBegin ||
        e.id == flight::FlightEventId::kDetectShardEnd) {
      // Paired duration events: Perfetto matches B/E by (pid, tid, name),
      // and shard begin/end always land on the same worker thread.
      const char* ph = e.id == flight::FlightEventId::kDetectShardBegin ? "B" : "E";
      common::Json d =
          duration_event(ph, tid, "detect shard " + std::to_string(e.a), info.subsystem, ts);
      if (e.id == flight::FlightEventId::kDetectShardBegin) {
        common::Json args = common::Json::object();
        args[info.arg_b] = static_cast<std::size_t>(e.b);
        d["args"] = std::move(args);
      }
      events.push_back(std::move(d));
      continue;
    }

    common::Json i = common::Json::object();
    i["ph"] = "i";
    i["pid"] = kPid;
    i["tid"] = tid;
    i["name"] = info.name;
    i["cat"] = info.subsystem;
    i["s"] = "t";  // thread-scoped instant
    i["ts"] = static_cast<std::int64_t>(ts);
    common::Json args = common::Json::object();
    args[info.arg_a] = static_cast<std::size_t>(e.a);
    args[info.arg_b] = static_cast<std::size_t>(e.b);
    if (!e.str.empty()) args["str"] = e.str;
    i["args"] = std::move(args);
    events.push_back(std::move(i));
  }

  common::Json doc = common::Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

}  // namespace intellog::obs
