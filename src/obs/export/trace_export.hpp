// HW-graph instances as span trees (the Workflow Observatory's first
// pillar).
//
// A reconstructed HW-graph instance already has trace shape: an
// entity-group lifespan is a parent span, each subroutine execution is a
// child span, and every Intel-Key hit is an instant event — all timed by
// the session's own log-record timestamps. These exporters serialize that
// mapping:
//  - hwgraph_chrome_trace(): Chrome trace-event JSON; loads directly in
//    Perfetto (https://ui.perfetto.dev) or about://tracing. One process
//    per session, one thread track per entity group.
//  - hwgraph_otlp_json(): an OTLP-style JSON document (resourceSpans →
//    scopeSpans → spans) with deterministic hashed trace/span ids and the
//    containment tree expressed through parentSpanId.
//
// This library lives outside intellog_obs because it needs the trained
// model (core depends on obs; the exporters depend on core).
#pragma once

#include <span>

#include "common/json.hpp"
#include "core/intellog.hpp"
#include "logparse/session.hpp"
#include "obs/flight/flight.hpp"

namespace intellog::obs {

/// Chrome trace-event document for the given sessions' HW-graph instances
/// against a trained model. Timestamps are rebased so the earliest record
/// across all sessions is t=0 (log time is wall-clock ms; the trace wants
/// a compact µs axis).
common::Json hwgraph_chrome_trace(const core::IntelLog& model,
                                  std::span<const logparse::Session> sessions);

/// OTLP-style JSON export of the same span trees: one resourceSpans entry
/// per session (resource carries container/system/file attributes), group
/// and subroutine spans nested via parentSpanId, Intel-Key hits as span
/// events. Ids are FNV-1a hashes of the span paths, so re-exporting the
/// same sessions yields byte-identical documents.
common::Json hwgraph_otlp_json(const core::IntelLog& model,
                               std::span<const logparse::Session> sessions);

/// Chrome trace-event document for a decoded flight-recorder dump
/// (`intellog flight decode --trace`). One process, one thread track per
/// ring slot (named by OS tid); detect.shard_begin/end become paired B/E
/// spans, every other event is a thread-scoped instant carrying its
/// annotated args. Timestamps are the records' steady-clock values rebased
/// so the oldest surviving event is t=0.
common::Json flight_chrome_trace(const flight::FlightDump& dump);

}  // namespace intellog::obs
