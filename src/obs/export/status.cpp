#include "obs/export/status.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace intellog::obs {

namespace {

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

common::Json build_status(const StatusContext& ctx) {
  common::Json doc = common::Json::object();
  doc["kind"] = "intellog_status";
  doc["schema_version"] = kStatusSchemaVersion;

  common::Json sessions = common::Json::array();
  if (ctx.detector) {
    for (const auto& info : ctx.detector->open_session_info()) {
      common::Json s = common::Json::object();
      s["container"] = info.container_id;
      s["buffered_records"] = info.buffered_records;
      s["first_seen_ms"] = static_cast<std::int64_t>(info.first_seen_ms);
      s["last_seen_ms"] = static_cast<std::int64_t>(info.last_seen_ms);
      sessions.push_back(std::move(s));
    }

    const auto& limits = ctx.detector->limits();
    common::Json occ = common::Json::object();
    occ["open_sessions"] = ctx.detector->open_sessions().size();
    occ["max_sessions"] = limits.max_sessions;  // 0: unbounded
    occ["buffered_records"] = ctx.detector->total_buffered_records();
    occ["max_buffered_records"] = limits.max_buffered_records;
    occ["max_session_age_ms"] = static_cast<std::int64_t>(limits.max_session_age_ms);
    occ["pending_evicted"] = ctx.detector->pending_evicted();
    doc["occupancy"] = std::move(occ);
  }
  doc["sessions"] = std::move(sessions);

  if (ctx.registry) {
    // Flat counter/gauge views (quarantine reasons, eviction counts, ...):
    // series key -> value, lifted out of the full metrics snapshot.
    common::Json counters = common::Json::object();
    common::Json gauges = common::Json::object();
    const common::Json all = ctx.registry->to_json();
    for (const auto& [key, m] : all.as_object()) {
      if (!m.is_object() || !m["type"].is_string()) continue;
      if (m["type"].as_string() == "counter") {
        counters[key] = m["value"];
      } else if (m["type"].as_string() == "gauge") {
        gauges[key] = m["value"];
      }
    }
    doc["counters"] = std::move(counters);
    doc["gauges"] = std::move(gauges);

    // Consume-latency histogram with exemplars: each occupied bucket can
    // name the session that most recently landed in it.
    if (const Histogram* h = ctx.registry->find_histogram("intellog_online_consume_us")) {
      doc["consume_latency_us"] = histogram_to_json(*h);
    }
  }

  if (!ctx.checkpoint_path.empty()) {
    common::Json cp = common::Json::object();
    cp["path"] = ctx.checkpoint_path;
    cp["age_s"] = ctx.checkpoint_age_s < 0 ? common::Json(nullptr)
                                           : common::Json(ctx.checkpoint_age_s);
    doc["checkpoint"] = std::move(cp);
  }
  if (!ctx.cursor.is_null()) doc["cursor"] = ctx.cursor;
  if (ctx.alerts) doc["alerts"] = ctx.alerts->to_json();

  if (ctx.profiler) {
    // Hot-frame attribution from the live profiling session, so `top`
    // shows where cycles and allocations go while the run is in flight.
    common::Json prof = common::Json::object();
    prof["sample_period_us"] = ctx.profiler->options().sample_period_us;
    prof["total_samples"] = ctx.profiler->total_samples();
    prof["total_alloc_bytes"] = ctx.profiler->total_alloc_bytes();
    common::Json hot = common::Json::array();
    for (const HotFrame& h : ctx.profiler->hot_frames(8)) {
      common::Json f = common::Json::object();
      f["path"] = h.path;
      f["self_samples"] = h.self_samples;
      f["self_pct"] = h.self_pct;
      f["alloc_bytes"] = h.alloc_bytes;
      hot.push_back(std::move(f));
    }
    prof["hot_frames"] = std::move(hot);
    doc["profile"] = std::move(prof);
  }
  return doc;
}

common::Json histogram_to_json(const Histogram& h) {
  common::Json hist = common::Json::object();
  hist["count"] = h.count();
  hist["sum"] = h.sum();
  common::Json buckets = common::Json::array();
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    common::Json b = common::Json::object();
    b["le"] = i < h.bounds().size() ? common::Json(h.bounds()[i]) : common::Json("+Inf");
    b["count"] = h.bucket_count(i);
    if (const auto ex = h.exemplar(i)) {
      common::Json ej = common::Json::object();
      ej["value"] = ex->value;
      ej["session"] = ex->label;
      b["exemplar"] = std::move(ej);
    }
    buckets.push_back(std::move(b));
  }
  hist["buckets"] = std::move(buckets);
  return hist;
}

void write_json_atomic(const common::Json& doc, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("write_json_atomic: cannot open " + tmp);
    out << doc.dump(2) << "\n";
    out.flush();
    if (!out) throw std::runtime_error("write_json_atomic: write failed: " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::string render_top(const common::Json& status) {
  if (!status.is_object() || !status["kind"].is_string() ||
      status["kind"].as_string() != "intellog_status") {
    throw std::runtime_error("render_top: not an intellog_status document");
  }
  std::string out;

  // Unknown schema versions are a warning, not an error: an old `top`
  // pointed at a newer writer still renders the fields it understands.
  if (status["schema_version"].is_number() &&
      status["schema_version"].as_int() != kStatusSchemaVersion) {
    out += "warning: status schema_version " +
           std::to_string(status["schema_version"].as_int()) + " (this reader expects " +
           std::to_string(kStatusSchemaVersion) + "); rendering known fields only\n";
  }

  const common::Json& occ = status["occupancy"];
  const auto occ_int = [&occ](const char* key) {
    return occ.is_object() && occ[key].is_number() ? occ[key].as_int() : 0;
  };
  out += "intellog status — " + std::to_string(occ_int("open_sessions")) + " open session(s), " +
         std::to_string(occ_int("buffered_records")) + " buffered record(s)";
  if (occ_int("pending_evicted") > 0) {
    out += ", " + std::to_string(occ_int("pending_evicted")) + " pending evicted";
  }
  out += "\n";
  if (occ_int("max_sessions") > 0 || occ_int("max_buffered_records") > 0) {
    out += "limits: " + std::to_string(occ_int("max_sessions")) + " sessions, " +
           std::to_string(occ_int("max_buffered_records")) + " records (0 = unbounded)\n";
  }

  // Serve-mode statuses carry a per-tenant table on top of the aggregate
  // occupancy; render it before the session list so the multi-tenant shape
  // is visible at a glance.
  if (status["tenants"].is_array() && !status["tenants"].as_array().empty()) {
    out += "tenants:\n";
    for (const common::Json& t : status["tenants"].as_array()) {
      if (!t.is_object() || !t["tenant"].is_string()) continue;
      const auto t_int = [&t](const char* key) {
        return t[key].is_number() ? t[key].as_int() : 0;
      };
      out += "  " + t["tenant"].as_string();
      if (t["breaker"].is_string()) out += "  breaker " + t["breaker"].as_string();
      out += "  " + std::to_string(t_int("open_sessions")) + " open, " +
             std::to_string(t_int("buffered_records")) + " buffered, " +
             std::to_string(t_int("pending_files")) + " pending file(s)";
      if (t_int("restarts") > 0) out += ", " + std::to_string(t_int("restarts")) + " restart(s)";
      out += "\n";
      // End-to-end latency (spool arrival -> report write), with the
      // slowest session named from the highest-valued bucket exemplar.
      if (t["e2e_latency_ms"].is_object() && t["e2e_latency_ms"]["count"].as_int() > 0) {
        const common::Json& h = t["e2e_latency_ms"];
        std::string slow_id;
        double slow_v = -1.0;
        for (const common::Json& b : h["buckets"].as_array()) {
          if (!b["exemplar"].is_object()) continue;
          const double v = b["exemplar"]["value"].as_double();
          if (v > slow_v) {
            slow_v = v;
            slow_id = b["exemplar"]["session"].as_string();
          }
        }
        out += "    e2e latency (ms) — count " + std::to_string(h["count"].as_int()) +
               ", sum " + fmt_double(h["sum"].as_double());
        if (!slow_id.empty()) {
          out += ", slowest " + slow_id + " @ " + fmt_double(slow_v) + "ms";
        }
        out += "\n";
      }
    }
  }

  if (status["checkpoint"].is_object()) {
    const common::Json& cp = status["checkpoint"];
    out += "checkpoint: " + cp["path"].as_string();
    if (cp["age_s"].is_number()) out += " (age " + fmt_double(cp["age_s"].as_double()) + "s)";
    out += "\n";
  }

  if (status["sessions"].is_array() && !status["sessions"].as_array().empty()) {
    out += "sessions:\n";
    for (const common::Json& s : status["sessions"].as_array()) {
      out += "  " + s["container"].as_string() + "  " +
             std::to_string(s["buffered_records"].as_int()) + " records  active " +
             std::to_string(s["first_seen_ms"].as_int()) + ".." +
             std::to_string(s["last_seen_ms"].as_int()) + " ms\n";
    }
  }

  if (status["alerts"].is_array() && !status["alerts"].as_array().empty()) {
    std::size_t firing = 0, pending = 0;
    for (const common::Json& a : status["alerts"].as_array()) {
      firing += a["firing"].is_bool() && a["firing"].as_bool();
      pending += a["pending"].is_bool() && a["pending"].as_bool();
    }
    out += "alerts: " + std::to_string(firing) + " firing, " + std::to_string(pending) +
           " pending, " + std::to_string(status["alerts"].as_array().size()) + " rule(s)\n";
    for (const common::Json& a : status["alerts"].as_array()) {
      const bool is_firing = a["firing"].is_bool() && a["firing"].as_bool();
      const bool is_pending = a["pending"].is_bool() && a["pending"].as_bool();
      if (!is_firing && !is_pending) continue;
      out += std::string("  ") + (is_firing ? "FIRING " : "pending ") +
             a["rule"].as_string();
      if (a["description"].is_string()) out += "  " + a["description"].as_string();
      out += "\n";
    }
  }

  if (status["counters"].is_object() && !status["counters"].as_object().empty()) {
    out += "counters:\n";
    for (const auto& [key, v] : status["counters"].as_object()) {
      out += "  " + key + " = " + std::to_string(v.as_int()) + "\n";
    }
  }

  if (status["profile"].is_object()) {
    const common::Json& prof = status["profile"];
    out += "hot frames — " + std::to_string(prof["total_samples"].as_int()) +
           " samples, " + std::to_string(prof["total_alloc_bytes"].as_int()) +
           " alloc bytes:\n";
    if (prof["hot_frames"].is_array()) {
      for (const common::Json& f : prof["hot_frames"].as_array()) {
        char pct[16];
        std::snprintf(pct, sizeof(pct), "%5.1f%%",
                      f["self_pct"].is_number() ? f["self_pct"].as_double() : 0.0);
        out += std::string("  ") + pct + "  " +
               std::to_string(f["self_samples"].as_int()) + " samples  " +
               std::to_string(f["alloc_bytes"].as_int()) + " B  " +
               f["path"].as_string() + "\n";
      }
    }
  }

  if (status["consume_latency_us"].is_object()) {
    const common::Json& h = status["consume_latency_us"];
    out += "consume latency (us) — count " + std::to_string(h["count"].as_int()) + ", sum " +
           fmt_double(h["sum"].as_double()) + ":\n";
    for (const common::Json& b : h["buckets"].as_array()) {
      if (b["count"].as_int() == 0) continue;  // only occupied buckets
      const std::string le = b["le"].is_string() ? b["le"].as_string()
                                                 : fmt_double(b["le"].as_double());
      out += "  le " + le + "  " + std::to_string(b["count"].as_int());
      if (b["exemplar"].is_object()) {
        out += "  <- " + b["exemplar"]["session"].as_string() + " @ " +
               fmt_double(b["exemplar"]["value"].as_double()) + "us";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace intellog::obs
