// Live introspection snapshots (the Workflow Observatory's third pillar).
//
// A long-running `intellog detect` periodically publishes one JSON
// document describing its internal state: open sessions, occupancy
// against the configured limits, quarantine/eviction counters, checkpoint
// freshness, and the consume-latency histogram with exemplars linking
// slow buckets back to the sessions that landed there. The document is
// published with the same atomic-rename discipline as checkpoints, so a
// reader (`intellog top`, a scraper, a human with jq) never sees a torn
// file.
#pragma once

#include <string>

#include "common/json.hpp"
#include "core/online.hpp"
#include "obs/metrics.hpp"
#include "obs/profile/profile.hpp"
#include "obs/timeseries/alerts.hpp"

namespace intellog::obs {

/// Version of the status-document layout. Bump when a field changes
/// meaning or moves; readers (`intellog top`) warn on versions they do
/// not recognise but still render what they can.
inline constexpr std::int64_t kStatusSchemaVersion = 1;

/// Everything a status snapshot draws from. All pointers optional: a null
/// detector yields an empty sessions list, a null registry omits the
/// metric sections.
struct StatusContext {
  const core::OnlineDetector* detector = nullptr;
  const MetricsRegistry* registry = nullptr;
  const ts::AlertEngine* alerts = nullptr;  ///< last evaluation, if alerting is on
  const Profiler* profiler = nullptr;       ///< live profiling session, if any
  std::string checkpoint_path;     ///< empty: checkpointing disabled
  double checkpoint_age_s = -1.0;  ///< seconds since last write (<0: none yet)
  common::Json cursor;             ///< opaque stream cursor (null when n/a)
};

/// One status document ({"kind": "intellog_status", ...}).
common::Json build_status(const StatusContext& ctx);

/// JSON view of one histogram — count/sum/buckets, each bucket with its
/// optional {"value", "session"} exemplar. The shape render_top's latency
/// sections consume; serve reuses it for per-tenant e2e latency.
common::Json histogram_to_json(const Histogram& h);

/// Writes `doc` to `path` durably: `path.tmp` first, then an atomic rename
/// over `path` — a reader sees the previous snapshot or the new one, never
/// a torn file. Throws std::runtime_error on I/O failure.
void write_json_atomic(const common::Json& doc, const std::string& path);

/// Renders a status document as the `intellog top` text view. Throws
/// std::runtime_error when `status` is not a status document.
std::string render_top(const common::Json& status);

}  // namespace intellog::obs
