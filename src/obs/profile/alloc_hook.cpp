// Global operator new/delete replacement for the Performance Observatory's
// allocation accounting.
//
// Replacement (not wrapping): the C++ standard reserves these signatures
// for exactly this purpose ([replacement.functions]). All allocation is
// routed through malloc/free.
//
// Because this object file lives in the intellog_obs static archive and
// defines symbols (operator new) that every C++ TU references, the linker
// pulls it into every binary that links the archive; the hook is therefore
// process-wide but costs one relaxed atomic load and a branch while no
// profiling session is active (prof_detail::note_alloc). Attribution goes
// to the calling thread's innermost active PROF_FRAME; allocations outside
// any frame are counted as unattributed session totals.
//
// Under -fsanitize builds this TU is intentionally ABSENT: the compiler
// driver links the sanitizer runtime ahead of user archives, so operator
// new resolves against libasan's interceptor and this member is never
// extracted — which is exactly what keeps poisoning, leak detection and
// use-after-free checks intact. operator_new_replaced() (strong here,
// weak-false in profile.cpp) tells the rest of the profiler which case it
// is in; when absent, profile.cpp routes attribution through the
// sanitizer's own __sanitizer_install_malloc_and_free_hooks instead.
#include <cstdlib>
#include <new>

#include "obs/profile/profile.hpp"

namespace intellog::obs::prof_detail {

// Strong definition: linked exactly when this TU's operator new is the one
// in effect. The weak-false fallback lives in profile.cpp.
bool operator_new_replaced() noexcept { return true; }

}  // namespace intellog::obs::prof_detail

namespace {

using intellog::obs::prof_detail::note_alloc;

void* checked_alloc(std::size_t size) {
  // Per [new.delete.single]: retry via the installed new-handler until the
  // allocation succeeds or no handler is left.
  void* p = nullptr;
  while ((p = std::malloc(size != 0 ? size : 1)) == nullptr) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
  note_alloc(size);
  return p;
}

void* checked_alloc_aligned(std::size_t size, std::align_val_t align) {
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + a - 1) / a * a;
  void* p = nullptr;
  while ((p = std::aligned_alloc(a, rounded != 0 ? rounded : a)) == nullptr) {
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
  note_alloc(size);
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return checked_alloc(size); }
void* operator new[](std::size_t size) { return checked_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return checked_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return checked_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t align) {
  return checked_alloc_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return checked_alloc_aligned(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return checked_alloc_aligned(size, align);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return checked_alloc_aligned(size, align);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
