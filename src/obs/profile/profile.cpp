#include "obs/profile/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"  // monotonic_ns
#include "obs/profile/profiled_mutex.hpp"

// Sanitizer allocator interface (matches <sanitizer/allocator_interface.h>).
// Declared weak so the reference resolves to nullptr in plain builds and to
// the libasan/libtsan export when a sanitizer runtime is linked.
extern "C" __attribute__((weak)) int __sanitizer_install_malloc_and_free_hooks(
    void (*malloc_hook)(const volatile void*, std::size_t),
    void (*free_hook)(const volatile void*));

namespace intellog::obs {

namespace prof_detail {

// constinit: the alloc hook may run during static initialization of other
// translation units, before any profiler exists.
constinit std::atomic<bool> g_alloc_enabled{false};
constinit std::atomic<std::uint64_t> g_generation{0};
thread_local FrameNode* t_frame = nullptr;
thread_local std::uint64_t t_gen = 0;

namespace {

constinit std::atomic<Profiler*> g_profiler{nullptr};

// Thread registry: weak_ptrs so the sampler never touches a slot whose
// owning thread has exited. Leaked on purpose (threads may deregister
// during static destruction).
struct ThreadRegistry {
  std::mutex mu;
  std::vector<std::weak_ptr<ThreadState>> slots;
};

ThreadRegistry& thread_registry() {
  static ThreadRegistry* reg = new ThreadRegistry();
  return *reg;
}

struct ThreadReg {
  std::shared_ptr<ThreadState> state = std::make_shared<ThreadState>();
  ThreadReg() {
    ThreadRegistry& reg = thread_registry();
    std::lock_guard lock(reg.mu);
    reg.slots.push_back(state);
  }
  ~ThreadReg() {
    state->current.store(nullptr, std::memory_order_release);
    ThreadRegistry& reg = thread_registry();
    std::lock_guard lock(reg.mu);
    std::erase_if(reg.slots, [this](const std::weak_ptr<ThreadState>& w) {
      return w.expired() || w.lock() == state;
    });
  }
};

}  // namespace

ThreadState* thread_state() {
  thread_local ThreadReg reg;
  return reg.state.get();
}

// Per-thread pending allocation counts for the innermost frame. The alloc
// hook only bumps these two plain thread-locals (no atomics, no shared
// cache lines — the hook runs on every operator new, and two relaxed RMWs
// per allocation were the dominant profiling overhead on the detect path);
// they are flushed into t_frame's atomic counters on every frame
// transition, which is the only point where the attribution target
// changes. Counts pending when a session stops before the frame closes
// are dropped by flush_pending's liveness check.
thread_local std::uint64_t t_pending_bytes = 0;
thread_local std::uint64_t t_pending_allocs = 0;

void flush_pending() noexcept {
  if (t_pending_allocs == 0) return;
  // Publish only into the live session's tree: g_profiler stays non-null
  // for as long as its tree is guaranteed allocated, and the generation
  // check rejects counts that belong to an earlier session.
  if (t_frame != nullptr &&
      g_profiler.load(std::memory_order_acquire) != nullptr &&
      t_gen == g_generation.load(std::memory_order_relaxed)) {
    t_frame->alloc_bytes.fetch_add(t_pending_bytes, std::memory_order_relaxed);
    t_frame->allocs.fetch_add(t_pending_allocs, std::memory_order_relaxed);
  }
  t_pending_bytes = 0;
  t_pending_allocs = 0;
}

void note_alloc_slow(std::size_t size) noexcept {
  // t_gen == current generation implies t_frame is a node of the live
  // profiler's tree (or nullptr); both are written together by this thread.
  if (t_gen == g_generation.load(std::memory_order_relaxed) && t_frame != nullptr) {
    t_pending_bytes += size;
    ++t_pending_allocs;
    return;
  }
  if (Profiler* p = g_profiler.load(std::memory_order_acquire)) {
    p->note_unattributed(size);
  }
}

// Weak fallback: overridden by the strong definition in alloc_hook.cpp
// when that TU's operator new replacement is linked (plain builds). A weak
// definition never causes the archive member to be extracted, so under
// sanitizer builds — where the runtime's interceptors satisfy operator new
// first — this stays false.
__attribute__((weak)) bool operator_new_replaced() noexcept { return false; }

}  // namespace prof_detail

namespace {

// Sanitizer builds: attribute allocations via the sanitizer's own malloc
// hooks, since its runtime owns operator new there (see alloc_hook.cpp).
// Installed once at static init; the hook body is the same one-load-and-
// branch note_alloc the replacement calls, so cost while idle is identical.
void sanitizer_malloc_hook(const volatile void*, std::size_t size) {
  prof_detail::note_alloc(size);
}
void sanitizer_free_hook(const volatile void*) {}

struct SanitizerHookInstaller {
  SanitizerHookInstaller() {
    if (__sanitizer_install_malloc_and_free_hooks != nullptr &&
        !prof_detail::operator_new_replaced()) {
      __sanitizer_install_malloc_and_free_hooks(&sanitizer_malloc_hook,
                                                &sanitizer_free_hook);
    }
  }
};
const SanitizerHookInstaller g_sanitizer_hook_installer;

using prof_detail::g_profiler;

std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> gen{0};
  return gen.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Walks the tree depth-first, calling fn(node, path) for every non-root
/// node. `path` is the ';'-joined frame names, root-first.
template <typename Fn>
void walk_tree(const FrameNode* node, std::string& path, Fn&& fn) {
  for (const FrameNode* c = node->first_child.load(std::memory_order_acquire);
       c != nullptr; c = c->next_sibling) {
    const std::size_t len = path.size();
    if (!path.empty()) path += ';';
    path += c->name;
    fn(*c, path);
    walk_tree(c, path, fn);
    path.resize(len);
  }
}

/// Aggregates one counter over the tree, keyed by path text. Two sibling
/// nodes can share a name (duplicate string literals across TUs, or a
/// benign concurrent-insert race), so exports merge by path.
template <typename Get>
std::map<std::string, std::uint64_t> collect_by_path(const FrameNode* root,
                                                     Get&& get) {
  std::map<std::string, std::uint64_t> out;
  std::string path;
  walk_tree(root, path, [&](const FrameNode& n, const std::string& p) {
    const std::uint64_t v = get(n);
    if (v > 0) out[p] += v;
  });
  return out;
}

std::string render_collapsed(const std::map<std::string, std::uint64_t>& weights) {
  std::string out;
  for (const auto& [path, weight] : weights) {
    out += path;
    out += ' ';
    out += std::to_string(weight);
    out += '\n';
  }
  return out;
}

}  // namespace

ProfilerOptions ProfilerOptions::from_env() {
  ProfilerOptions opts;
  if (const char* env = std::getenv("INTELLOG_PROF_PERIOD_US")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && v > 0) opts.sample_period_us = v;
  }
  return opts;
}

Profiler::Profiler(ProfilerOptions opts)
    : opts_(opts), generation_(next_generation()) {
  root_.name = "(root)";
  Profiler* expected = nullptr;
  if (!g_profiler.compare_exchange_strong(expected, this,
                                          std::memory_order_acq_rel)) {
    throw std::runtime_error("Profiler: a profiling session is already active");
  }
  start_ns_ = monotonic_ns();
  prof_detail::g_generation.store(generation_, std::memory_order_relaxed);
  if (opts_.track_allocs) {
    prof_detail::g_alloc_enabled.store(true, std::memory_order_relaxed);
  }
  sampler_ = std::thread([this] { sampler_loop(); });
}

Profiler::~Profiler() {
  stop();
  delete_children(&root_);
}

void Profiler::stop() {
  if (stopped_) return;
  stopped_ = true;
  // The stopping thread may still be inside an annotated frame (stop()
  // mid-scope); bank its pending allocation counts while the session still
  // counts as live. Other threads must have quiesced already (see the
  // header's invariants), so their frames have closed and flushed.
  prof_detail::flush_pending();
  // Disarm the alloc hook and the frame-enter fast path before touching
  // anything else; new PROF_FRAMEs become no-ops from here on.
  prof_detail::g_alloc_enabled.store(false, std::memory_order_relaxed);
  g_profiler.store(nullptr, std::memory_order_release);
  {
    std::lock_guard lock(sampler_mu_);
    stop_requested_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  stop_ns_ = monotonic_ns();
  // Defensively clear every sampler slot: any remaining pointer targets
  // this session's tree, which is about to become unreadable.
  auto& reg = prof_detail::thread_registry();
  std::lock_guard lock(reg.mu);
  for (auto& w : reg.slots) {
    if (auto s = w.lock()) s->current.store(nullptr, std::memory_order_release);
  }
}

void Profiler::sampler_loop() {
  const auto period = std::chrono::microseconds(opts_.sample_period_us);
  auto next = std::chrono::steady_clock::now() + period;
  std::unique_lock lock(sampler_mu_);
  while (!stop_requested_) {
    if (sampler_cv_.wait_until(lock, next, [this] { return stop_requested_; })) {
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    next = std::max(next + period, now);  // skip missed ticks, don't spin
    ticks_.fetch_add(1, std::memory_order_relaxed);
    auto& reg = prof_detail::thread_registry();
    std::lock_guard slots_lock(reg.mu);
    for (auto& w : reg.slots) {
      auto s = w.lock();
      if (!s) continue;
      if (FrameNode* n = s->current.load(std::memory_order_acquire)) {
        n->samples.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void Profiler::delete_children(FrameNode* node) {
  FrameNode* c = node->first_child.load(std::memory_order_acquire);
  while (c != nullptr) {
    FrameNode* next = c->next_sibling;
    delete_children(c);
    delete c;
    c = next;
  }
  node->first_child.store(nullptr, std::memory_order_relaxed);
}

FrameNode* Profiler::descend(FrameNode* parent, const char* name) {
  for (FrameNode* c = parent->first_child.load(std::memory_order_acquire);
       c != nullptr; c = c->next_sibling) {
    if (c->name == name) return c;
  }
  auto* node = new FrameNode();
  node->name = name;
  node->parent = parent;
  FrameNode* head = parent->first_child.load(std::memory_order_acquire);
  do {
    node->next_sibling = head;
  } while (!parent->first_child.compare_exchange_weak(
      head, node, std::memory_order_release, std::memory_order_acquire));
  return node;
}

double Profiler::duration_ms() const {
  const std::uint64_t end = stop_ns_ != 0 ? stop_ns_ : monotonic_ns();
  return static_cast<double>(end - start_ns_) / 1e6;
}

std::uint64_t Profiler::total_samples() const {
  std::uint64_t total = 0;
  std::string path;
  walk_tree(&root_, path, [&](const FrameNode& n, const std::string&) {
    total += n.samples.load(std::memory_order_relaxed);
  });
  return total;
}

std::uint64_t Profiler::total_alloc_bytes() const {
  std::uint64_t total = 0;
  std::string path;
  walk_tree(&root_, path, [&](const FrameNode& n, const std::string&) {
    total += n.alloc_bytes.load(std::memory_order_relaxed);
  });
  return total;
}

std::uint64_t Profiler::total_allocs() const {
  std::uint64_t total = 0;
  std::string path;
  walk_tree(&root_, path, [&](const FrameNode& n, const std::string&) {
    total += n.allocs.load(std::memory_order_relaxed);
  });
  return total;
}

std::string Profiler::collapsed() const {
  return render_collapsed(collect_by_path(&root_, [](const FrameNode& n) {
    return n.samples.load(std::memory_order_relaxed);
  }));
}

std::string Profiler::collapsed_alloc() const {
  return render_collapsed(collect_by_path(&root_, [](const FrameNode& n) {
    return n.alloc_bytes.load(std::memory_order_relaxed);
  }));
}

common::Json Profiler::to_json() const {
  // Merge nodes by path first (duplicate literals / insert races), then
  // compute cumulative counts from the merged rows: a row's cumulative
  // value is its self value plus every row it path-prefixes.
  struct Row {
    std::uint64_t enters = 0, samples = 0, alloc_bytes = 0, allocs = 0;
  };
  std::map<std::string, Row> rows;
  std::string path;
  walk_tree(&root_, path, [&](const FrameNode& n, const std::string& p) {
    Row& r = rows[p];
    r.enters += n.enters.load(std::memory_order_relaxed);
    r.samples += n.samples.load(std::memory_order_relaxed);
    r.alloc_bytes += n.alloc_bytes.load(std::memory_order_relaxed);
    r.allocs += n.allocs.load(std::memory_order_relaxed);
  });

  std::uint64_t total_samples = 0, total_bytes = 0, total_allocs = 0;
  for (const auto& [p, r] : rows) {
    total_samples += r.samples;
    total_bytes += r.alloc_bytes;
    total_allocs += r.allocs;
  }

  common::Json frames = common::Json::array();
  for (const auto& [p, r] : rows) {
    std::uint64_t cum_samples = r.samples, cum_bytes = r.alloc_bytes;
    const std::string prefix = p + ';';
    for (auto it = rows.upper_bound(p);
         it != rows.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      cum_samples += it->second.samples;
      cum_bytes += it->second.alloc_bytes;
    }
    const std::size_t sep = p.rfind(';');
    common::Json f = common::Json::object();
    f["path"] = p;
    f["name"] = sep == std::string::npos ? p : p.substr(sep + 1);
    f["enters"] = r.enters;
    f["self_samples"] = r.samples;
    f["cum_samples"] = cum_samples;
    f["alloc_bytes"] = r.alloc_bytes;
    f["cum_alloc_bytes"] = cum_bytes;
    f["allocs"] = r.allocs;
    frames.push_back(std::move(f));
  }

  common::Json locks = common::Json::array();
  for (const auto& s : ProfiledMutex::snapshot_all()) {
    common::Json l = common::Json::object();
    l["name"] = s.name;
    l["acquisitions"] = s.acquisitions;
    l["contended"] = s.contended;
    l["wait_ms"] = s.wait_ms;
    locks.push_back(std::move(l));
  }

  common::Json out = common::Json::object();
  out["kind"] = "intellog_profile";
  out["schema_version"] = 1;
  out["sample_period_us"] = opts_.sample_period_us;
  out["duration_ms"] = duration_ms();
  out["sampler_ticks"] = sampler_ticks();
  out["total_samples"] = total_samples;
  out["total_alloc_bytes"] = total_bytes;
  out["total_allocs"] = total_allocs;
  out["unattributed_alloc_bytes"] = unattributed_alloc_bytes();
  out["unattributed_allocs"] = unattributed_allocs();
  out["alloc_tracking"] = opts_.track_allocs;
  out["frames"] = std::move(frames);
  out["locks"] = std::move(locks);
  return out;
}

std::vector<HotFrame> Profiler::hot_frames(std::size_t n) const {
  struct Row {
    std::uint64_t samples = 0, alloc_bytes = 0, allocs = 0;
  };
  std::map<std::string, Row> rows;
  std::string path;
  walk_tree(&root_, path, [&](const FrameNode& node, const std::string& p) {
    Row& r = rows[p];
    r.samples += node.samples.load(std::memory_order_relaxed);
    r.alloc_bytes += node.alloc_bytes.load(std::memory_order_relaxed);
    r.allocs += node.allocs.load(std::memory_order_relaxed);
  });
  std::uint64_t total = 0;
  for (const auto& [p, r] : rows) total += r.samples;

  std::vector<HotFrame> out;
  out.reserve(rows.size());
  for (const auto& [p, r] : rows) {
    if (r.samples == 0 && r.alloc_bytes == 0) continue;
    HotFrame h;
    h.path = p;
    h.self_samples = r.samples;
    h.alloc_bytes = r.alloc_bytes;
    h.allocs = r.allocs;
    h.self_pct = total > 0 ? 100.0 * static_cast<double>(r.samples) /
                                 static_cast<double>(total)
                           : 0.0;
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(), [](const HotFrame& a, const HotFrame& b) {
    if (a.self_samples != b.self_samples) return a.self_samples > b.self_samples;
    if (a.alloc_bytes != b.alloc_bytes) return a.alloc_bytes > b.alloc_bytes;
    return a.path < b.path;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::string Profiler::hot_table(std::size_t n) const {
  const std::vector<HotFrame> hot = hot_frames(n);
  std::ostringstream os;
  os << "  " << "self%   samples   alloc_bytes  frame\n";
  for (const HotFrame& h : hot) {
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%5.1f", h.self_pct);
    os << "  " << pct << "  " << std::setw(8) << h.self_samples << "  "
       << std::setw(12) << h.alloc_bytes << "  " << h.path << "\n";
  }
  return os.str();
}

Profiler* profiler() { return g_profiler.load(std::memory_order_acquire); }

ProfFrame::ProfFrame(const char* name) {
  Profiler* p = profiler();
  if (p == nullptr) return;
  using namespace prof_detail;
  flush_pending();  // pending alloc counts belong to the frame we leave
  FrameNode* parent = (t_gen == p->generation() && t_frame != nullptr)
                          ? t_frame
                          : p->root_mutable();
  FrameNode* node = p->descend(parent, name);
  node->enters.fetch_add(1, std::memory_order_relaxed);
  prev_frame_ = t_frame;
  prev_gen_ = t_gen;
  gen_ = p->generation();
  t_frame = node;
  t_gen = gen_;
  ts_ = thread_state();
  ts_->current.store(node, std::memory_order_release);
}

void ProfFrame::close() {
  if (ts_ == nullptr) return;
  using namespace prof_detail;
  flush_pending();  // attribute this frame's pending counts before unwinding
  t_frame = prev_frame_;
  t_gen = prev_gen_;
  // Never publish a pointer from another session into the sampler slot:
  // the previous frame is only safe to sample if it belongs to the same
  // generation as the one we are unwinding from.
  ts_->current.store(prev_gen_ == gen_ ? prev_frame_ : nullptr,
                     std::memory_order_release);
  ts_ = nullptr;
}

ProfFrame::~ProfFrame() { close(); }

}  // namespace intellog::obs
