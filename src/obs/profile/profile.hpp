// Performance Observatory: in-process sampling profiler with allocation
// attribution.
//
// The profiler follows the scoped-tracing idiom from obs/trace: hot paths
// carry lightweight RAII annotations (`PROF_FRAME("spell.match")`) that are
// one relaxed atomic load and a branch when no Profiler is installed. While
// a Profiler is live, each annotated scope descends into a process-global
// frame tree (lock-free: children are published with a CAS onto an
// intrusive sibling list and never removed until the session ends) and a
// dedicated steady-clock sampler thread periodically reads every registered
// thread's innermost-frame pointer, bumping that node's relaxed sample
// counter. Separately, the global operator new replacement (alloc_hook.cpp)
// attributes allocation bytes/counts to the innermost active frame, which
// is how per-record std::string pressure becomes visible per pipeline stage.
// Allocation counts batch in plain thread-locals and flush into the frame
// tree on frame transitions (the only points where the attribution target
// changes), so the per-allocation cost is two non-atomic increments; live
// mid-run reads (status snapshots) can lag by the open frames' pending
// counts, but anything read after the frames close is exact.
//
// Shadow-stack invariants:
//  - Frame names must be string literals; nodes store the pointer.
//  - Frames are strictly scoped (RAII) and per-thread; the thread-local
//    innermost pointer and its generation stamp are updated together by the
//    owning thread only.
//  - Cross-profiler staleness is handled by generation stamps: a frame
//    opened under session N never attributes samples or allocations to a
//    tree from session M != N.
//  - A Profiler must outlive every thread that may touch frames while it is
//    installed: destroy it only after profiled threads have quiesced
//    (thread pools joined). The CLI/bench scopes guarantee this.
//  - At most one Profiler is installed at a time (the constructor throws
//    otherwise).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"

namespace intellog::obs {

class Profiler;

/// One node in the frame tree: a distinct annotated call path. Counters are
/// relaxed atomics bumped from profiled threads (enters/allocs), the alloc
/// hook, and the sampler thread (samples).
struct FrameNode {
  const char* name = "";          ///< string literal (see file header)
  FrameNode* parent = nullptr;    ///< nullptr only for the root sentinel
  std::atomic<FrameNode*> first_child{nullptr};
  FrameNode* next_sibling = nullptr;  ///< immutable after CAS publication
  std::atomic<std::uint64_t> enters{0};
  std::atomic<std::uint64_t> samples{0};      ///< sampler hits (innermost)
  std::atomic<std::uint64_t> alloc_bytes{0};  ///< attributed operator new bytes
  std::atomic<std::uint64_t> allocs{0};
};

namespace prof_detail {

/// Per-thread slot the sampler reads. Owned by a shared_ptr per thread;
/// the global thread registry holds weak_ptrs so exiting threads can
/// deregister without racing the sampler.
struct ThreadState {
  std::atomic<FrameNode*> current{nullptr};  ///< innermost frame or nullptr
};

// Alloc-hook fast path state. g_alloc_enabled is true only while a
// Profiler with track_allocs is installed; t_frame/t_gen are updated
// together by the owning thread (t_gen guards against frames left open
// across profiler sessions).
extern std::atomic<bool> g_alloc_enabled;
extern std::atomic<std::uint64_t> g_generation;
extern thread_local FrameNode* t_frame;
extern thread_local std::uint64_t t_gen;

void note_alloc_slow(std::size_t size) noexcept;

/// Called by the operator new replacement on every allocation. Must be
/// async-signal-ish cheap when disabled: one relaxed load and a branch.
inline void note_alloc(std::size_t size) noexcept {
  if (!g_alloc_enabled.load(std::memory_order_relaxed)) return;
  note_alloc_slow(size);
}

/// The calling thread's sampler slot (registered on first use).
ThreadState* thread_state();

/// True when alloc_hook.cpp's operator new replacement is linked into this
/// binary. Under -fsanitize builds the sanitizer runtime owns operator new
/// instead (the replacement TU is never extracted from the archive) and
/// profile.cpp routes attribution through the sanitizer's malloc hooks —
/// same counters, plus coverage of plain malloc().
bool operator_new_replaced() noexcept;

}  // namespace prof_detail

struct ProfilerOptions {
  /// Sampler tick period. 1 kHz keeps the sampler's wakeup cost inside the
  /// 10% overhead budget even on single-vCPU machines, where every tick is
  /// a forced context switch away from the profiled thread.
  std::uint64_t sample_period_us = 1000;
  bool track_allocs = true;

  /// Defaults overridden by INTELLOG_PROF_PERIOD_US when set (CI drops the
  /// period so short seeded runs still collect thousands of samples).
  static ProfilerOptions from_env();
};

/// One hot frame row (status snapshots, `top`, bench attribution).
struct HotFrame {
  std::string path;  ///< ';'-joined frame names, root-first
  std::uint64_t self_samples = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t allocs = 0;
  double self_pct = 0.0;  ///< self_samples / total_samples * 100
};

/// A profiling session: owns the frame tree and the sampler thread, and
/// installs itself as the process-global profiler for its lifetime.
class Profiler {
 public:
  explicit Profiler(ProfilerOptions opts = ProfilerOptions::from_env());
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Stops collection (sampler joined, alloc hook disarmed, global accessor
  /// cleared). The tree remains readable. Idempotent; the destructor calls
  /// it first.
  void stop();

  const ProfilerOptions& options() const { return opts_; }
  std::uint64_t generation() const { return generation_; }
  const FrameNode* root() const { return &root_; }
  std::uint64_t sampler_ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }
  /// Wall time from construction to stop() (or to now while running), ms.
  double duration_ms() const;

  std::uint64_t total_samples() const;  ///< sum of self samples over the tree
  std::uint64_t total_alloc_bytes() const;
  std::uint64_t total_allocs() const;
  std::uint64_t unattributed_alloc_bytes() const {
    return unattributed_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t unattributed_allocs() const {
    return unattributed_allocs_.load(std::memory_order_relaxed);
  }

  /// Collapsed-stack export (flamegraph.pl / speedscope): one
  /// "frame;frame;frame COUNT" line per sampled path, weight = CPU samples.
  std::string collapsed() const;
  /// Same format, weight = attributed allocation bytes.
  std::string collapsed_alloc() const;
  /// pprof-style JSON: totals + one row per frame path with self/cumulative
  /// samples and allocation attribution, plus lock-contention rows.
  common::Json to_json() const;
  /// Top-n frames by self samples (ties by alloc bytes).
  std::vector<HotFrame> hot_frames(std::size_t n) const;
  /// hot_frames() rendered as an aligned text table.
  std::string hot_table(std::size_t n) const;

  /// get-or-create `name` under `parent`. Lock-free; used by ProfFrame.
  FrameNode* descend(FrameNode* parent, const char* name);
  FrameNode* root_mutable() { return &root_; }
  void note_unattributed(std::size_t size) noexcept {
    unattributed_bytes_.fetch_add(size, std::memory_order_relaxed);
    unattributed_allocs_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  void sampler_loop();
  static void delete_children(FrameNode* node);

  ProfilerOptions opts_;
  std::uint64_t generation_;
  FrameNode root_;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> unattributed_bytes_{0};
  std::atomic<std::uint64_t> unattributed_allocs_{0};
  std::uint64_t start_ns_ = 0;
  std::uint64_t stop_ns_ = 0;  ///< 0 while running
  bool stopped_ = false;

  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool stop_requested_ = false;
  std::thread sampler_;
};

/// The installed profiler, or nullptr (the default). One relaxed load.
Profiler* profiler();

/// RAII frame annotation. `name` must be a string literal. No-op (one
/// relaxed load + branch) when no profiler is installed.
class ProfFrame {
 public:
  explicit ProfFrame(const char* name);
  ~ProfFrame();
  ProfFrame(const ProfFrame&) = delete;
  ProfFrame& operator=(const ProfFrame&) = delete;

  /// Exits the frame now (instead of at scope end). Idempotent. Like
  /// Span::close(), for stages that end mid-function; frames must still
  /// unwind LIFO per thread.
  void close();

 private:
  prof_detail::ThreadState* ts_ = nullptr;  // non-null <=> engaged
  FrameNode* prev_frame_ = nullptr;
  std::uint64_t prev_gen_ = 0;
  std::uint64_t gen_ = 0;
};

#define INTELLOG_PROF_CAT2(a, b) a##b
#define INTELLOG_PROF_CAT(a, b) INTELLOG_PROF_CAT2(a, b)
/// Annotates the enclosing scope as a profiler frame.
#define PROF_FRAME(name) \
  ::intellog::obs::ProfFrame INTELLOG_PROF_CAT(intellog_prof_frame_, __LINE__)(name)

}  // namespace intellog::obs
