#include "obs/profile/profiled_mutex.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"  // monotonic_ns

namespace intellog::obs {

namespace {

// Leaked on purpose: ProfiledMutex members of static-lifetime objects
// (e.g. a process-global MetricsRegistry) deregister during static
// destruction, which must not race a destroyed registry.
struct MutexRegistry {
  std::mutex mu;
  std::vector<ProfiledMutex*> entries;
};

MutexRegistry& mutex_registry() {
  static MutexRegistry* reg = new MutexRegistry();
  return *reg;
}

}  // namespace

ProfiledMutex::ProfiledMutex(const char* name) : name_(name) {
  MutexRegistry& reg = mutex_registry();
  std::lock_guard lock(reg.mu);
  reg.entries.push_back(this);
}

ProfiledMutex::~ProfiledMutex() {
  MutexRegistry& reg = mutex_registry();
  std::lock_guard lock(reg.mu);
  std::erase(reg.entries, this);
}

void ProfiledMutex::lock() {
  if (mu_.try_lock()) {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  contended_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t t0 = monotonic_ns();
  mu_.lock();
  wait_ns_.fetch_add(monotonic_ns() - t0, std::memory_order_relaxed);
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
}

bool ProfiledMutex::try_lock() {
  if (!mu_.try_lock()) return false;
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double ProfiledMutex::wait_ms() const {
  return static_cast<double>(wait_ns_.load(std::memory_order_relaxed)) / 1e6;
}

std::vector<ProfiledMutex::Snapshot> ProfiledMutex::snapshot_all() {
  std::map<std::string, Snapshot> by_name;
  MutexRegistry& reg = mutex_registry();
  std::lock_guard lock(reg.mu);
  for (const ProfiledMutex* m : reg.entries) {
    Snapshot& s = by_name[m->name()];
    s.name = m->name();
    s.acquisitions += m->acquisitions();
    s.contended += m->contended();
    s.wait_ms += m->wait_ms();
  }
  std::vector<Snapshot> out;
  out.reserve(by_name.size());
  for (auto& [name, s] : by_name) out.push_back(std::move(s));
  return out;
}

}  // namespace intellog::obs
