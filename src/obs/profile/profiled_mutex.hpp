// ProfiledMutex: a std::mutex wrapper that counts acquisitions, contended
// acquisitions and contended wait time, so the Performance Observatory can
// name the locks a workload actually fights over.
//
// The fast path is `try_lock` first: an uncontended acquisition costs one
// extra relaxed increment and never reads a clock. Only a failed try_lock
// (real contention) pays two steady_clock reads to time the wait. Named
// instances self-register in a process-global list (leaked intentionally,
// sidestepping static destruction order) that Profiler::to_json() and the
// tests snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace intellog::obs {

class ProfiledMutex {
 public:
  /// `name` must outlive the mutex (string literal by convention),
  /// e.g. "spell.match_memo".
  explicit ProfiledMutex(const char* name);
  ~ProfiledMutex();
  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock() { mu_.unlock(); }

  const char* name() const { return name_; }
  std::uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  std::uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }
  /// Total time spent blocked in contended lock() calls, milliseconds.
  double wait_ms() const;

  struct Snapshot {
    std::string name;
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
    double wait_ms = 0.0;
  };
  /// Stats of every live ProfiledMutex, aggregated by name (several
  /// registries/models may deploy the same logical lock).
  static std::vector<Snapshot> snapshot_all();

 private:
  const char* name_;
  std::mutex mu_;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> wait_ns_{0};
};

}  // namespace intellog::obs
