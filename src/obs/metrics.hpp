// Pipeline metrics: counters, gauges and fixed-bucket histograms.
//
// The registry is the only coordination point: instrumentation sites ask it
// once for a metric handle (`counter("intellog_online_records_total")`) and
// then mutate the handle with a single relaxed atomic op — cheap enough for
// per-record hot paths. When no registry is installed (the default), the
// process-global accessor returns nullptr and instrumented code degrades to
// one relaxed atomic load plus a predictable branch.
//
// Naming scheme (Prometheus conventions): `intellog_<area>_<what>[_<unit>]`,
// `_total` suffix for monotonic counters, `_ms`/`_us` for durations.
// Labels distinguish instances of one logical metric (`{stage="spell"}`).
//
// Snapshots export to JSON (machine-readable, BENCH trajectories) and to
// the Prometheus text exposition format (scrapeable).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "obs/profile/profiled_mutex.hpp"

namespace intellog::obs {

/// Metric labels as ordered key/value pairs. Order-insensitive equality:
/// the registry canonicalizes by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed value (e.g. currently-open streaming sessions).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Instantaneous real value (saturation fractions, ratios). Gauge is
/// integral, which forced PR-8-era ratio gauges into scaled percents;
/// DoubleGauge exports the fraction itself through JSON and Prometheus.
class DoubleGauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double n);  ///< CAS loop (atomic<double> has no fetch_add pre-C++26)
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// One exemplar: a concrete observation pinned to a histogram bucket so a
/// latency bucket can be traced back to the thing that caused it (the
/// OpenMetrics exemplar concept — here, consume latencies -> session ids).
struct Exemplar {
  double value = 0.0;
  std::string label;  ///< e.g. the container id of the observed session
};

/// Fixed-bucket latency histogram. Bucket i counts observations
/// <= bounds[i]; one implicit +Inf bucket catches the rest. Concurrent
/// observe() is safe (per-bucket relaxed atomics; sum via CAS loop).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  /// observe() plus exemplar capture: remembers (v, label) as the bucket's
  /// latest exemplar. Exemplar storage is best-effort under contention
  /// (try_lock; a skipped update costs nothing on the hot path).
  void observe(double v, std::string_view exemplar_label);

  /// Latest exemplar of bucket i, or nullopt when none was captured.
  std::optional<Exemplar> exemplar(std::size_t i) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the +Inf bucket).
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Cumulative count of observations <= bounds()[i] (Prometheus `le`).
  std::uint64_t cumulative_count(std::size_t i) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Default duration buckets in milliseconds: 0.01 .. 10000, roughly
  /// geometric. Shared by all pipeline latency histograms.
  static const std::vector<double>& default_ms_buckets();
  /// Finer buckets for per-record streaming latencies, in microseconds.
  static const std::vector<double>& default_us_buckets();

 private:
  std::vector<double> bounds_;                          // sorted upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Exemplars are cold-path (status snapshots), so a plain mutex +
  // try_lock on write keeps observe() wait-free when contended.
  mutable std::mutex exemplar_mu_;
  std::vector<Exemplar> exemplars_;      // bounds_.size() + 1
  std::vector<char> exemplar_present_;   // parallel flags
};

/// Name+label keyed metric registry. get-or-create accessors hand out
/// stable pointers (metrics are never removed while the registry lives),
/// so callers may cache handles across calls/threads.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  DoubleGauge& double_gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` is consulted only on first creation of this name+labels.
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       const std::vector<double>& bounds = Histogram::default_ms_buckets());

  /// Registers the `# HELP` text for a metric family. One string per
  /// family name (labels excluded); the last call wins. Families without
  /// help text export without a HELP line.
  void describe(const std::string& name, const std::string& help);

  /// Lookup without creation (introspection/tests). nullptr when absent.
  const Counter* find_counter(const std::string& name, const Labels& labels = {}) const;
  const Gauge* find_gauge(const std::string& name, const Labels& labels = {}) const;
  const DoubleGauge* find_double_gauge(const std::string& name, const Labels& labels = {}) const;
  const Histogram* find_histogram(const std::string& name, const Labels& labels = {}) const;

  std::size_t size() const;

  /// JSON snapshot: {"name{labels}": {"type": ..., "value"/"buckets": ...}}.
  common::Json to_json() const;
  /// Prometheus text exposition format snapshot.
  std::string to_prometheus() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;  // canonical (sorted by key)
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<DoubleGauge> double_gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& get_or_create(const std::string& name, const Labels& labels);
  const Entry* find(const std::string& name, const Labels& labels) const;

  // Profiled so the Performance Observatory can surface registry-lock
  // contention (every get-or-create and snapshot goes through it).
  mutable ProfiledMutex mu_{"metrics.registry"};
  // Keyed by "name" + canonical label serialization; std::map keeps the
  // exports deterministically ordered.
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::string> help_;  ///< family name -> HELP text
};

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double-quote and newline (only those three).
std::string prom_escape(std::string_view value);

/// Installs the process-global registry (nullptr disables metrics; the
/// default). The registry must outlive all instrumented calls made while
/// installed; callers that cache handles must not outlive it either.
void set_registry(MetricsRegistry* registry);
/// The installed registry, or nullptr. One relaxed atomic load.
MetricsRegistry* registry();

/// RAII wall-time probe: observes elapsed milliseconds into `hist` on
/// destruction. A null histogram makes it a no-op (and skips the clock
/// reads entirely).
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram* hist);
  ~ScopedTimerMs();
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;
  /// Elapsed so far, in ms (0 when disabled).
  double elapsed_ms() const;

 private:
  Histogram* hist_;
  std::uint64_t start_ns_ = 0;
};

/// Monotonic nanoseconds (steady_clock); shared by timers and tracing.
std::uint64_t monotonic_ns();

}  // namespace intellog::obs
