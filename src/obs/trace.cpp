#include "obs/trace.hpp"

#include <algorithm>

#include "obs/metrics.hpp"  // monotonic_ns

namespace intellog::obs {

namespace {

std::atomic<TraceCollector*> g_tracer{nullptr};
std::atomic<std::uint32_t> g_next_tid{0};

thread_local std::uint32_t t_tid = UINT32_MAX;
thread_local std::uint32_t t_depth = 0;

}  // namespace

TraceCollector::TraceCollector(std::size_t max_events)
    : epoch_ns_(monotonic_ns()), max_events_(max_events) {
  events_.reserve(std::min<std::size_t>(max_events_, 4096));
}

void TraceCollector::record(const TraceEvent& ev) {
  std::lock_guard lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(ev);
}

std::size_t TraceCollector::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::size_t TraceCollector::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

std::uint64_t TraceCollector::now_us() const { return (monotonic_ns() - epoch_ns_) / 1000; }

common::Json TraceCollector::to_chrome_json() const {
  std::lock_guard lock(mu_);
  common::Json events = common::Json::array();
  for (const TraceEvent& ev : events_) {
    common::Json e = common::Json::object();
    e["name"] = std::string(ev.name);
    e["cat"] = std::string(ev.category);
    e["ph"] = "X";
    e["ts"] = static_cast<std::int64_t>(ev.ts_us);
    // Clamp to 1us: per-record spans routinely complete inside one
    // microsecond tick, and Perfetto renders dur=0 as an unselectable
    // zero-width sliver (same clamp as the hwgraph exporter).
    e["dur"] = static_cast<std::int64_t>(ev.dur_us == 0 ? 1 : ev.dur_us);
    e["pid"] = 1;
    e["tid"] = static_cast<std::int64_t>(ev.tid);
    common::Json args = common::Json::object();
    args["depth"] = static_cast<std::int64_t>(ev.depth);
    e["args"] = std::move(args);
    events.push_back(std::move(e));
  }
  common::Json out = common::Json::object();
  out["traceEvents"] = std::move(events);
  out["displayTimeUnit"] = "ms";
  if (dropped_ > 0) {
    common::Json meta = common::Json::object();
    meta["dropped_events"] = dropped_;
    out["metadata"] = std::move(meta);
  }
  return out;
}

void set_tracer(TraceCollector* collector) {
  g_tracer.store(collector, std::memory_order_release);
}

TraceCollector* tracer() { return g_tracer.load(std::memory_order_acquire); }

std::uint32_t trace_thread_id() {
  if (t_tid == UINT32_MAX) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

Span::Span(const char* name, const char* category)
    : collector_(tracer()), name_(name), category_(category) {
  if (!collector_) return;
  start_us_ = collector_->now_us();
  depth_ = t_depth++;
}

void Span::close() {
  if (!collector_) return;
  --t_depth;
  TraceEvent ev;
  ev.name = name_;
  ev.category = category_;
  ev.ts_us = start_us_;
  ev.dur_us = collector_->now_us() - start_us_;
  ev.tid = trace_thread_id();
  ev.depth = depth_;
  collector_->record(ev);
  collector_ = nullptr;
}

Span::~Span() { close(); }

}  // namespace intellog::obs
