// Scoped tracing: RAII spans exported as Chrome trace-event JSON.
//
// A Span records wall time (steady_clock) from construction to destruction
// on a thread-local span stack, so nested pipeline stages ("train" >
// "train/extract") come out properly nested per thread. The resulting file
// loads directly in Perfetto (https://ui.perfetto.dev) or Chrome's
// about://tracing.
//
// Like metrics, tracing is opt-in: with no collector installed a Span is
// one relaxed atomic load and a branch. Span names must be string literals
// (or otherwise outlive the collector) — spans store the pointer, not a
// copy, to keep hot-path construction allocation-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace intellog::obs {

/// One completed span ("ph":"X" complete event in the Chrome format).
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  std::uint64_t ts_us = 0;   ///< start, microseconds since collector epoch
  std::uint64_t dur_us = 0;  ///< duration in microseconds
  std::uint32_t tid = 0;     ///< small per-process thread id
  std::uint32_t depth = 0;   ///< nesting depth on that thread at start
};

/// Thread-safe bounded collector of completed spans. Events past
/// `max_events` are counted as dropped rather than grown without bound —
/// per-record spans (Spell matching) can reach millions per run.
class TraceCollector {
 public:
  explicit TraceCollector(std::size_t max_events = 1 << 20);

  void record(const TraceEvent& ev);

  std::size_t size() const;
  std::size_t dropped() const;
  /// Microseconds since this collector's construction (span timestamps).
  std::uint64_t now_us() const;

  /// Chrome trace-event JSON: {"traceEvents": [...], "displayTimeUnit": "ms"}.
  common::Json to_chrome_json() const;

 private:
  std::uint64_t epoch_ns_;
  std::size_t max_events_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

/// Installs the process-global collector (nullptr disables tracing; the
/// default). Must outlive any span opened while installed.
void set_tracer(TraceCollector* collector);
/// The installed collector, or nullptr. One relaxed atomic load.
TraceCollector* tracer();

/// Small dense id for the calling thread (assigned on first use).
std::uint32_t trace_thread_id();

/// RAII span. `name`/`category` must be string literals (see file header).
class Span {
 public:
  explicit Span(const char* name, const char* category = "pipeline");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span now (instead of at scope exit). Idempotent.
  void close();

 private:
  TraceCollector* collector_;  // captured at construction; null -> no-op
  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace intellog::obs
