#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>

#include "obs/pool_metrics.hpp"

namespace intellog::obs {

namespace {

std::atomic<MetricsRegistry*> g_registry{nullptr};

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Registry map key: `name{k1="v1",k2="v2"}` over canonical labels.
std::string entry_key(const std::string& name, const Labels& labels) {
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

/// Prometheus sample name: drop the braces entirely when label-free.
std::string prom_series(const std::string& name, const Labels& labels,
                        const std::string& extra_label = {}, const std::string& extra_value = {}) {
  std::string out = name;
  if (labels.empty() && extra_label.empty()) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + prom_escape(v) + "\"";
  }
  if (!extra_label.empty()) {
    if (!first) out += ',';
    out += extra_label + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

/// Prometheus HELP text: same escaping minus the quote (HELP lines are not
/// quoted, so only backslash and newline are special).
std::string prom_help_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string fmt_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void atomic_add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void DoubleGauge::add(double n) { atomic_add_double(v_, n); }

std::string prom_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  exemplars_.resize(bounds_.size() + 1);
  exemplar_present_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

void Histogram::observe(double v, std::string_view exemplar_label) {
  observe(v);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  // Best effort: an exemplar lost to contention is just replaced by the
  // next observation landing in the same bucket.
  std::unique_lock lock(exemplar_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  exemplars_[idx].value = v;
  exemplars_[idx].label.assign(exemplar_label.data(), exemplar_label.size());
  exemplar_present_[idx] = 1;
}

std::optional<Exemplar> Histogram::exemplar(std::size_t i) const {
  std::lock_guard lock(exemplar_mu_);
  if (i >= exemplars_.size() || !exemplar_present_[i]) return std::nullopt;
  return exemplars_[i];
}

std::uint64_t Histogram::cumulative_count(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b <= bounds_.size(); ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

const std::vector<double>& Histogram::default_ms_buckets() {
  static const std::vector<double> kBuckets = {0.01, 0.05, 0.1, 0.5,  1,    5,    10,
                                               50,   100,  500, 1000, 5000, 10000};
  return kBuckets;
}

const std::vector<double>& Histogram::default_us_buckets() {
  static const std::vector<double> kBuckets = {0.5, 1,   2,    5,    10,   20,    50,
                                               100, 500, 1000, 5000, 10000, 100000};
  return kBuckets;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::get_or_create(const std::string& name,
                                                       const Labels& labels) {
  const Labels canon = canonical(labels);
  auto [it, fresh] = entries_.try_emplace(entry_key(name, canon));
  if (fresh) {
    it->second.name = name;
    it->second.labels = canon;
  }
  return it->second;
}

const MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name,
                                                    const Labels& labels) const {
  const auto it = entries_.find(entry_key(name, canonical(labels)));
  return it == entries_.end() ? nullptr : &it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  std::lock_guard lock(mu_);
  Entry& e = get_or_create(name, labels);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard lock(mu_);
  Entry& e = get_or_create(name, labels);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

DoubleGauge& MetricsRegistry::double_gauge(const std::string& name, const Labels& labels) {
  std::lock_guard lock(mu_);
  Entry& e = get_or_create(name, labels);
  if (!e.double_gauge) e.double_gauge = std::make_unique<DoubleGauge>();
  return *e.double_gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const Labels& labels,
                                      const std::vector<double>& bounds) {
  std::lock_guard lock(mu_);
  Entry& e = get_or_create(name, labels);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(bounds);
  return *e.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name, const Labels& labels) const {
  std::lock_guard lock(mu_);
  const Entry* e = find(name, labels);
  return e ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name, const Labels& labels) const {
  std::lock_guard lock(mu_);
  const Entry* e = find(name, labels);
  return e ? e->gauge.get() : nullptr;
}

const DoubleGauge* MetricsRegistry::find_double_gauge(const std::string& name,
                                                      const Labels& labels) const {
  std::lock_guard lock(mu_);
  const Entry* e = find(name, labels);
  return e ? e->double_gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const Labels& labels) const {
  std::lock_guard lock(mu_);
  const Entry* e = find(name, labels);
  return e ? e->histogram.get() : nullptr;
}

void MetricsRegistry::describe(const std::string& name, const std::string& help) {
  std::lock_guard lock(mu_);
  help_[name] = help;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

common::Json MetricsRegistry::to_json() const {
  std::lock_guard lock(mu_);
  common::Json out = common::Json::object();
  for (const auto& [key, e] : entries_) {
    common::Json m = common::Json::object();
    common::Json labels = common::Json::object();
    for (const auto& [k, v] : e.labels) labels[k] = v;
    m["name"] = e.name;
    m["labels"] = std::move(labels);
    if (e.counter) {
      m["type"] = "counter";
      m["value"] = e.counter->value();
    } else if (e.gauge) {
      m["type"] = "gauge";
      m["value"] = e.gauge->value();
    } else if (e.double_gauge) {
      m["type"] = "gauge";  // consumers see one gauge kind; the value is real
      m["value"] = e.double_gauge->value();
    } else if (e.histogram) {
      m["type"] = "histogram";
      m["count"] = e.histogram->count();
      m["sum"] = e.histogram->sum();
      common::Json buckets = common::Json::array();
      for (std::size_t i = 0; i <= e.histogram->bounds().size(); ++i) {
        common::Json b = common::Json::object();
        b["le"] = i < e.histogram->bounds().size() ? common::Json(e.histogram->bounds()[i])
                                                   : common::Json("+Inf");
        b["count"] = e.histogram->bucket_count(i);
        buckets.push_back(std::move(b));
      }
      m["buckets"] = std::move(buckets);
      common::Json exemplars = common::Json::array();
      for (std::size_t i = 0; i <= e.histogram->bounds().size(); ++i) {
        if (const auto ex = e.histogram->exemplar(i)) {
          common::Json ej = common::Json::object();
          ej["bucket"] = i;
          ej["le"] = i < e.histogram->bounds().size()
                         ? common::Json(e.histogram->bounds()[i])
                         : common::Json("+Inf");
          ej["value"] = ex->value;
          ej["label"] = ex->label;
          exemplars.push_back(std::move(ej));
        }
      }
      if (!exemplars.as_array().empty()) m["exemplars"] = std::move(exemplars);
    } else {
      continue;  // declared but never materialized; nothing to export
    }
    out[key] = std::move(m);
  }
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard lock(mu_);
  std::string out;
  std::set<std::string> described;  // one # HELP/# TYPE pair per family
  for (const auto& [key, e] : entries_) {
    (void)key;
    const auto type_line = [&](const char* type) {
      if (!described.insert(e.name).second) return;
      if (const auto h = help_.find(e.name); h != help_.end()) {
        out += "# HELP " + e.name + " " + prom_help_escape(h->second) + "\n";
      }
      out += "# TYPE " + e.name + " " + type + "\n";
    };
    if (e.counter) {
      type_line("counter");
      out += prom_series(e.name, e.labels) + " " + std::to_string(e.counter->value()) + "\n";
    } else if (e.gauge) {
      type_line("gauge");
      out += prom_series(e.name, e.labels) + " " + std::to_string(e.gauge->value()) + "\n";
    } else if (e.double_gauge) {
      type_line("gauge");
      out += prom_series(e.name, e.labels) + " " + fmt_number(e.double_gauge->value()) + "\n";
    } else if (e.histogram) {
      type_line("histogram");
      const Histogram& h = *e.histogram;
      for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
        const std::string le =
            i < h.bounds().size() ? fmt_number(h.bounds()[i]) : std::string("+Inf");
        out += prom_series(e.name + "_bucket", e.labels, "le", le) + " " +
               std::to_string(h.cumulative_count(i));
        // OpenMetrics-style exemplar suffix: ties a latency bucket back to
        // the session that most recently landed in it.
        if (const auto ex = h.exemplar(i)) {
          out += " # {session=\"" + prom_escape(ex->label) + "\"} " + fmt_number(ex->value);
        }
        out += "\n";
      }
      out += prom_series(e.name + "_sum", e.labels) + " " + fmt_number(h.sum()) + "\n";
      out += prom_series(e.name + "_count", e.labels) + " " + std::to_string(h.count()) + "\n";
    }
  }
  return out;
}

// --- global install --------------------------------------------------------

void set_registry(MetricsRegistry* registry) {
  g_registry.store(registry, std::memory_order_release);
  // Thread pools publish queue metrics through the same registry via the
  // process PoolObserver hook; keep the bridge in lockstep.
  sync_pool_metrics_bridge(registry);
}

MetricsRegistry* registry() { return g_registry.load(std::memory_order_acquire); }

// --- timers ----------------------------------------------------------------

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

ScopedTimerMs::ScopedTimerMs(Histogram* hist) : hist_(hist) {
  if (hist_) start_ns_ = monotonic_ns();
}

double ScopedTimerMs::elapsed_ms() const {
  if (!hist_) return 0.0;
  return static_cast<double>(monotonic_ns() - start_ns_) / 1e6;
}

ScopedTimerMs::~ScopedTimerMs() {
  if (hist_) hist_->observe(elapsed_ms());
}

}  // namespace intellog::obs
