#include "obs/pool_metrics.hpp"

#include <memory>

#include "obs/flight/flight.hpp"

namespace intellog::obs {

PoolMetricsBridge::PoolMetricsBridge(MetricsRegistry& registry)
    : depth_(&registry.gauge("intellog_pool_queue_depth")),
      delay_ms_(&registry.histogram("intellog_pool_queue_delay_ms")),
      tasks_(&registry.counter("intellog_pool_tasks_total")),
      busy_us_(&registry.counter("intellog_pool_busy_us_total")),
      idle_us_(&registry.counter("intellog_pool_idle_us_total")),
      pools_retired_(&registry.counter("intellog_pool_retired_total")),
      cancelled_(&registry.counter("intellog_pool_cancelled_total")),
      drained_(&registry.counter("intellog_pool_drained_total")) {
  registry.describe("intellog_pool_queue_depth",
                    "Tasks currently queued across all thread pools.");
  registry.describe("intellog_pool_queue_delay_ms",
                    "Enqueue-to-dequeue latency of thread-pool tasks.");
  registry.describe("intellog_pool_tasks_total",
                    "Thread-pool tasks picked up by workers.");
  registry.describe("intellog_pool_busy_us_total",
                    "Worker time spent running tasks, summed over retired pools.");
  registry.describe("intellog_pool_idle_us_total",
                    "Worker time spent waiting for work, summed over retired pools.");
  registry.describe("intellog_pool_retired_total",
                    "Thread pools shut down since the registry was installed.");
  registry.describe("intellog_pool_cancelled_total",
                    "Queued tasks destroyed unrun by ThreadPool::shutdown(Cancel).");
  registry.describe("intellog_pool_drained_total",
                    "Tasks still queued at shutdown that ran to completion during drain.");
}

void PoolMetricsBridge::on_enqueue(std::size_t queue_depth) {
  depth_->add(1);
  FLIGHT_EVENT(kPoolEnqueue, queue_depth, 0);
}

void PoolMetricsBridge::on_dequeue(double delay_ms, std::size_t queue_depth) {
  depth_->sub(1);
  delay_ms_->observe(delay_ms);
  tasks_->add(1);
  FLIGHT_EVENT(kPoolDequeue, queue_depth, static_cast<std::uint64_t>(delay_ms * 1000.0));
}

void PoolMetricsBridge::on_retire(std::uint64_t busy_us, std::uint64_t idle_us,
                                  std::uint64_t tasks) {
  (void)tasks;  // already counted per-dequeue
  busy_us_->add(busy_us);
  idle_us_->add(idle_us);
  pools_retired_->add(1);
  FLIGHT_EVENT(kPoolRetire, busy_us, idle_us);
}

void PoolMetricsBridge::on_shutdown(std::uint64_t drained, std::uint64_t cancelled) {
  // Cancelled tasks were counted by on_enqueue but never reach on_dequeue;
  // settle the depth gauge so it returns to zero after a Cancel shutdown.
  if (cancelled > 0) depth_->sub(static_cast<double>(cancelled));
  if (cancelled > 0) cancelled_->add(static_cast<double>(cancelled));
  if (drained > 0) drained_->add(static_cast<double>(drained));
}

void sync_pool_metrics_bridge(MetricsRegistry* registry) {
  static std::unique_ptr<PoolMetricsBridge> bridge;
  if (registry == nullptr) {
    common::set_pool_observer(nullptr);
    bridge.reset();
    return;
  }
  auto fresh = std::make_unique<PoolMetricsBridge>(*registry);
  common::set_pool_observer(fresh.get());
  bridge = std::move(fresh);  // frees any bridge for the previous registry
}

}  // namespace intellog::obs
