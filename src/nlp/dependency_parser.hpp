// Shallow Universal Dependencies parser for log sentences.
//
// Replaces the paper's Stanford neural parser (DESIGN.md). IntelLog reads
// exactly 7 UD relations (Table 3): ROOT and xcomp identify the predicate;
// nsubj / nsubjpass identify the subj-entity; dobj / iobj / nmod identify
// the obj-entity. Log messages are overwhelmingly single-clause simple
// sentences (§7), so a deterministic rule parser recovers those relations:
//  - clauses split at sentence punctuation,
//  - the root is the first finite verb (else participle / gerund / base
//    verb after "to"; else the clause is nominal and yields no operation),
//  - passives are detected from be-forms and "by"-agents,
//  - noun-phrase heads are the last noun of a contiguous nominal run.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "nlp/token.hpp"

namespace intellog::nlp {

/// The UD relations of Table 3 (plus None for "no relation found").
enum class Relation { Root, Xcomp, Nsubj, Nsubjpass, Dobj, Iobj, Nmod, None };

std::string_view to_string(Relation rel);

/// One dependency edge. For Root, `head` equals `dependent`.
struct Dependency {
  std::size_t head;       ///< token index of the governor
  std::size_t dependent;  ///< token index of the dependent
  Relation rel;
};

/// Parse of one clause; token indices refer to the full tagged sequence.
struct ClauseParse {
  std::size_t begin = 0;  ///< first token index of the clause
  std::size_t end = 0;    ///< one past the last token index
  std::ptrdiff_t root = -1;  ///< root token index, -1 for an empty clause
  bool nominal_root = false;  ///< true when no predicate was found
  bool passive = false;
  std::vector<Dependency> deps;

  /// First dependent of `head` with relation `rel`, or -1.
  std::ptrdiff_t dependent_of(std::size_t head, Relation rel) const;
};

class DependencyParser {
 public:
  /// Parses a tagged token sequence into per-clause dependency sets.
  std::vector<ClauseParse> parse(const std::vector<Token>& tokens) const;

 private:
  ClauseParse parse_clause(const std::vector<Token>& tokens, std::size_t begin,
                           std::size_t end) const;
};

}  // namespace intellog::nlp
