#include "nlp/token.hpp"

#include "common/strings.hpp"

namespace intellog::nlp {

std::string_view to_string(PosTag tag) {
  switch (tag) {
    case PosTag::NN: return "NN";
    case PosTag::NNS: return "NNS";
    case PosTag::NNP: return "NNP";
    case PosTag::NNPS: return "NNPS";
    case PosTag::JJ: return "JJ";
    case PosTag::VB: return "VB";
    case PosTag::VBD: return "VBD";
    case PosTag::VBG: return "VBG";
    case PosTag::VBN: return "VBN";
    case PosTag::VBP: return "VBP";
    case PosTag::VBZ: return "VBZ";
    case PosTag::MD: return "MD";
    case PosTag::IN: return "IN";
    case PosTag::TO: return "TO";
    case PosTag::DT: return "DT";
    case PosTag::CD: return "CD";
    case PosTag::RB: return "RB";
    case PosTag::PRP: return "PRP";
    case PosTag::PRPS: return "PRP$";
    case PosTag::CC: return "CC";
    case PosTag::SYM: return "SYM";
    case PosTag::PUNCT: return ".";
    case PosTag::FW: return "FW";
  }
  return "FW";
}

PosTag pos_from_string(std::string_view name) {
  if (name == "NN") return PosTag::NN;
  if (name == "NNS") return PosTag::NNS;
  if (name == "NNP") return PosTag::NNP;
  if (name == "NNPS") return PosTag::NNPS;
  if (name == "JJ" || name == "JJR" || name == "JJS") return PosTag::JJ;
  if (name == "VB") return PosTag::VB;
  if (name == "VBD") return PosTag::VBD;
  if (name == "VBG") return PosTag::VBG;
  if (name == "VBN") return PosTag::VBN;
  if (name == "VBP") return PosTag::VBP;
  if (name == "VBZ") return PosTag::VBZ;
  if (name == "MD") return PosTag::MD;
  if (name == "IN") return PosTag::IN;
  if (name == "TO") return PosTag::TO;
  if (name == "DT" || name == "PDT" || name == "WDT") return PosTag::DT;
  if (name == "CD") return PosTag::CD;
  if (name == "RB" || name == "RBR" || name == "RBS") return PosTag::RB;
  if (name == "PRP") return PosTag::PRP;
  if (name == "PRP$") return PosTag::PRPS;
  if (name == "CC") return PosTag::CC;
  if (name == "SYM" || name == "#" || name == "$") return PosTag::SYM;
  if (name == "." || name == "," || name == ":" || name == "-LRB-" || name == "-RRB-")
    return PosTag::PUNCT;
  return PosTag::FW;
}

bool is_noun(PosTag tag) {
  return tag == PosTag::NN || tag == PosTag::NNS || tag == PosTag::NNP || tag == PosTag::NNPS;
}

bool is_verb(PosTag tag) {
  switch (tag) {
    case PosTag::VB:
    case PosTag::VBD:
    case PosTag::VBG:
    case PosTag::VBN:
    case PosTag::VBP:
    case PosTag::VBZ: return true;
    default: return false;
  }
}

bool is_finite_verb(PosTag tag) {
  return tag == PosTag::VBZ || tag == PosTag::VBP || tag == PosTag::VBD;
}

bool is_adjective(PosTag tag) { return tag == PosTag::JJ; }

Token::Token(std::string t) : text(std::move(t)), lower(common::to_lower(text)) {}

}  // namespace intellog::nlp
