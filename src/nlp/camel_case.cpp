#include "nlp/camel_case.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace intellog::nlp {

std::vector<std::string> split_camel_case(std::string_view word) {
  std::vector<std::string> parts;
  std::string cur;
  const auto flush = [&] {
    if (!cur.empty()) {
      parts.push_back(common::to_lower(cur));
      cur.clear();
    }
  };
  for (std::size_t i = 0; i < word.size(); ++i) {
    const char c = word[i];
    if (c == '-') {
      // Hyphenated words ("map-output", "non-empty") are NOT camel case;
      // the hyphen stays inside the current part.
      cur += c;
      continue;
    }
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      // Digits/symbols terminate the current part but are kept verbatim as
      // their own part ("Task2" -> "task", "2").
      flush();
      if (!std::isspace(static_cast<unsigned char>(c))) cur += c;
      flush();
      continue;
    }
    const bool upper = std::isupper(static_cast<unsigned char>(c));
    if (upper && !cur.empty()) {
      const char last = cur.back();
      const bool last_lower = std::islower(static_cast<unsigned char>(last));
      // lower->Upper boundary: "mapTask" -> map | Task
      if (last_lower) {
        flush();
      } else if (i + 1 < word.size() && std::islower(static_cast<unsigned char>(word[i + 1]))) {
        // Acronym-run end: "NMToken" -> NM | Token (current char starts the
        // next word because the following char is lower-case).
        flush();
      }
    }
    cur += c;
  }
  flush();
  return parts;
}

bool is_camel_case(std::string_view word) { return split_camel_case(word).size() >= 2; }

std::vector<std::string> split_snake_case(std::string_view word) {
  if (word.find('_') == std::string_view::npos) return {};
  for (char c : word) {
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_') return {};
  }
  std::vector<std::string> parts;
  for (const auto& p : common::split(word, "_")) parts.push_back(common::to_lower(p));
  return parts.size() >= 2 ? parts : std::vector<std::string>{};
}

}  // namespace intellog::nlp
