#include "nlp/pos_tagger.hpp"

#include <cctype>

#include "common/strings.hpp"
#include "nlp/tokenizer.hpp"

namespace intellog::nlp {

namespace {

bool is_punct_token(const std::string& w) {
  if (w.size() != 1) return false;
  const char c = w[0];
  return c == '[' || c == ']' || c == '(' || c == ')' || c == '{' || c == '}' || c == ',' ||
         c == '.' || c == ':' || c == ';' || c == '!' || c == '?' || c == '"' || c == '\'';
}

bool is_symbol_token(const std::string& w) {
  return w == "*" || w == "#" || w == "=" || w == "%" || w == "->" || w == "=>" || w == "-" ||
         w == "/" || w == "+" || w == "&" || w == "@" || w == "|" || w == "...";
}

bool all_upper(std::string_view s) {
  bool any = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) any = true;
  }
  return any;
}

bool is_be_form(const std::string& lower) {
  return lower == "is" || lower == "are" || lower == "was" || lower == "were" ||
         lower == "been" || lower == "being" || lower == "be" || lower == "got" ||
         lower == "gets" || lower == "has" || lower == "have" || lower == "had";
}

/// Picks the verb tag for a word whose context forces a verb reading.
PosTag choose_verb_tag(const LexEntry& e, bool after_to_or_md, bool passive_context) {
  if (after_to_or_md && e.can_be(PosTag::VB)) return PosTag::VB;
  if (passive_context && e.can_be(PosTag::VBN)) return PosTag::VBN;
  for (const PosTag pref : {PosTag::VBD, PosTag::VBZ, PosTag::VBG, PosTag::VBP, PosTag::VB,
                            PosTag::VBN}) {
    if (e.can_be(pref)) return pref;
  }
  return e.verb_reading;
}

}  // namespace

PosTagger::PosTagger() : lexicon_() {}
PosTagger::PosTagger(Lexicon lexicon) : lexicon_(std::move(lexicon)) {}

PosTag PosTagger::initial_tag(const std::string& word, const std::string& lower,
                              bool sentence_start) const {
  if (is_punct_token(word)) return PosTag::PUNCT;
  if (is_symbol_token(word)) return PosTag::SYM;
  if (common::is_number(word)) return PosTag::CD;
  // Identifier-like tokens: attempt_01, host1:13562, /tmp/x, hdfs://... —
  // NNP, i.e. a name. The extractor later decides identifier vs. locality.
  if (is_atomic_token(word)) return PosTag::NNP;
  if (common::has_digit(word) && common::has_letter(word)) return PosTag::NNP;

  if (const auto entry = lexicon_.lookup(lower)) return entry->primary;

  // Unknown word: morphology, then capitalization.
  if (common::ends_with(lower, "ing") && lower.size() > 5) return PosTag::VBG;
  if (common::ends_with(lower, "ed") && lower.size() > 4) return PosTag::VBN;
  if (common::ends_with(lower, "ly") && lower.size() > 4) return PosTag::RB;
  for (const char* suf : {"tion", "sion", "ment", "ness", "ance", "ence", "ity", "ship"}) {
    if (common::ends_with(lower, suf)) return PosTag::NN;
  }
  for (const char* suf : {"able", "ible", "ful", "ous", "ive"}) {
    if (common::ends_with(lower, suf)) return PosTag::JJ;
  }
  if (all_upper(word)) return PosTag::NNP;  // acronyms: TID, RM, DAG
  if (!sentence_start && std::isupper(static_cast<unsigned char>(word[0]))) return PosTag::NNP;
  if (common::ends_with(lower, "s") && !common::ends_with(lower, "ss") && lower.size() > 3)
    return PosTag::NNS;
  return PosTag::NN;
}

void PosTagger::contextual_pass(std::vector<Token>& tokens) const {
  const auto prev_word_index = [&](std::size_t i) -> std::ptrdiff_t {
    for (std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) - 1; j >= 0; --j) {
      if (tokens[static_cast<std::size_t>(j)].tag != PosTag::PUNCT) return j;
    }
    return -1;
  };
  const auto next_word_index = [&](std::size_t i) -> std::ptrdiff_t {
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      if (tokens[j].tag != PosTag::PUNCT) return static_cast<std::ptrdiff_t>(j);
    }
    return -1;
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    Token& tok = tokens[i];
    const auto entry = lexicon_.lookup(tok.lower);
    const std::ptrdiff_t pi = prev_word_index(i);
    const std::ptrdiff_t ni = next_word_index(i);
    const Token* prev = pi >= 0 ? &tokens[static_cast<std::size_t>(pi)] : nullptr;
    const Token* next = ni >= 0 ? &tokens[static_cast<std::size_t>(ni)] : nullptr;

    // Rule 1: after TO or a modal, an ambiguous word is a base-form verb.
    if (prev && (prev->tag == PosTag::TO || prev->tag == PosTag::MD) && entry &&
        entry->can_be_verb()) {
      tok.tag = choose_verb_tag(*entry, /*after_to_or_md=*/true, false);
      continue;
    }
    // Rule 2: after a determiner / possessive / adjective / preposition /
    // number, an ambiguous verb-tagged word is a noun ("of map", "the
    // shuffle", "remote fetch").
    if (prev && is_verb(tok.tag) && entry && entry->can_be_noun() &&
        (prev->tag == PosTag::DT || prev->tag == PosTag::PRPS || prev->tag == PosTag::JJ ||
         prev->tag == PosTag::IN || prev->tag == PosTag::CD)) {
      tok.tag = entry->noun_reading;
      continue;
    }
    // Rule 3: past form after a be/have form is a past participle
    // ("was killed", "got assigned").
    if (prev && tok.tag == PosTag::VBD && entry && entry->can_be(PosTag::VBN) &&
        is_be_form(prev->lower)) {
      tok.tag = PosTag::VBN;
      continue;
    }
    // Rule 4: a participle-capable verb directly followed by "by" is a
    // passive participle ("freed by fetcher").
    if (next && is_verb(tok.tag) && entry && entry->can_be(PosTag::VBN) && next->lower == "by") {
      tok.tag = PosTag::VBN;
      continue;
    }
    // Rule 5: a noun-tagged verb homonym followed by a numeral/determiner is
    // acting as the predicate ("read 2264 bytes", "freed the buffer") — but
    // only when the clause has no predicate yet ("Finished spill 0" keeps
    // 'spill' as the object noun).
    if (next && is_noun(tok.tag) && entry && entry->can_be_verb() &&
        (next->tag == PosTag::CD || next->tag == PosTag::DT || next->tag == PosTag::PRPS)) {
      bool verb_before = false;
      for (std::size_t j = 0; j < i; ++j) verb_before |= is_verb(tokens[j].tag);
      if (!verb_before) {
        tok.tag = choose_verb_tag(*entry, false, false);
        continue;
      }
    }
  }
}

std::vector<Token> PosTagger::tag(const std::vector<std::string>& words) const {
  std::vector<Token> tokens;
  tokens.reserve(words.size());
  bool sentence_start = true;
  for (const std::string& w : words) {
    Token tok(w);
    tok.tag = initial_tag(tok.text, tok.lower, sentence_start);
    if (tok.tag != PosTag::PUNCT && tok.tag != PosTag::SYM) sentence_start = false;
    if (tok.tag == PosTag::PUNCT && (w == "." || w == ";" || w == "!" || w == "?"))
      sentence_start = true;
    tokens.push_back(std::move(tok));
  }
  contextual_pass(tokens);
  return tokens;
}

std::vector<Token> PosTagger::tag_message(std::string_view message) const {
  return tag(tokenize(message));
}

}  // namespace intellog::nlp
