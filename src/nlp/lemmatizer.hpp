// Lemmatization of extracted phrases (§3.1: "After we extract the entity
// phrases, we lemmatize them to their singular forms").
//
// Uses the lexicon's recorded inflection->base map first (covers the
// irregulars: vertices -> vertex, children -> child, read -> read, ...) and
// falls back to conservative suffix stripping for unknown words.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "nlp/lexicon.hpp"

namespace intellog::nlp {

class Lemmatizer {
 public:
  explicit Lemmatizer(const Lexicon* lexicon = nullptr) : lexicon_(lexicon) {}

  /// Singular / base form of one lower-cased word.
  std::string lemma(std::string_view lower_word) const;

  /// Lemmatizes the final word of a multi-word phrase (the head noun);
  /// earlier words are noun modifiers and stay as written.
  std::vector<std::string> lemmatize_phrase(std::vector<std::string> words) const;

 private:
  const Lexicon* lexicon_;
};

}  // namespace intellog::nlp
