// Log-message tokenizer.
//
// Log text is not free-form prose: identifiers (`attempt_01`,
// `container_e12_0001_01_000002`), socket addresses (`host1:13562`),
// filesystem and DFS paths, and number+unit fusions (`4ms`, `128MB`) must
// survive as analyzable tokens. The tokenizer therefore:
//  - keeps identifier-like tokens (letters+digits+[_./:-]) intact,
//  - splits a trailing alphabetic unit off a leading number ("4ms" -> 4, ms),
//  - separates surrounding punctuation ('[', ']', '(', ')', ',', trailing
//    '.', ':') into PUNCT tokens, and
//  - keeps '#' as its own SYM token (MapReduce's "fetcher#1" style).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace intellog::nlp {

/// Splits a log message (or log key) into raw token strings.
std::vector<std::string> tokenize(std::string_view message);

/// True if the token looks like a path, URL, or socket address — something
/// the tokenizer must never split on internal punctuation.
bool is_atomic_token(std::string_view token);

}  // namespace intellog::nlp
