#include "nlp/dependency_parser.hpp"

namespace intellog::nlp {

namespace {

bool is_sentence_end(const Token& t) {
  return t.tag == PosTag::PUNCT &&
         (t.text == "." || t.text == ";" || t.text == "!" || t.text == "?");
}

bool is_be_form(const std::string& lower) {
  return lower == "is" || lower == "are" || lower == "was" || lower == "were" ||
         lower == "been" || lower == "being" || lower == "be" || lower == "got" ||
         lower == "gets" || lower == "getting";
}

/// Words that take an open clausal complement ("about to X", "failed to X").
bool takes_xcomp(const std::string& lower) {
  return lower == "about" || lower == "ready" || lower == "unable" || lower == "trying" ||
         lower == "failed" || lower == "failing" || lower == "able" || lower == "starting" ||
         lower == "going" || lower == "waiting" || lower == "attempting";
}

}  // namespace

std::string_view to_string(Relation rel) {
  switch (rel) {
    case Relation::Root: return "ROOT";
    case Relation::Xcomp: return "xcomp";
    case Relation::Nsubj: return "nsubj";
    case Relation::Nsubjpass: return "nsubjpass";
    case Relation::Dobj: return "dobj";
    case Relation::Iobj: return "iobj";
    case Relation::Nmod: return "nmod";
    case Relation::None: return "none";
  }
  return "none";
}

std::ptrdiff_t ClauseParse::dependent_of(std::size_t head, Relation rel) const {
  for (const auto& d : deps) {
    if (d.head == head && d.rel == rel) return static_cast<std::ptrdiff_t>(d.dependent);
  }
  return -1;
}

std::vector<ClauseParse> DependencyParser::parse(const std::vector<Token>& tokens) const {
  std::vector<ClauseParse> clauses;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= tokens.size(); ++i) {
    const bool boundary = i == tokens.size() || is_sentence_end(tokens[i]);
    if (!boundary) continue;
    if (i > begin) clauses.push_back(parse_clause(tokens, begin, i));
    begin = i + 1;
  }
  return clauses;
}

ClauseParse DependencyParser::parse_clause(const std::vector<Token>& tokens, std::size_t begin,
                                           std::size_t end) const {
  ClauseParse cp;
  cp.begin = begin;
  cp.end = end;

  const auto tag_at = [&](std::size_t i) { return tokens[i].tag; };
  const auto is_nominal = [&](std::size_t i) {
    return is_noun(tag_at(i)) || tag_at(i) == PosTag::CD;
  };
  // Head of the noun-phrase run starting at i: the last contiguous nominal
  // ("MapTask metrics system" -> "system"). CDs participate but never win
  // over a real noun ("task 1.0" -> head "task"... the CD trails the noun,
  // so the last *noun* within the run is the head).
  const auto np_head = [&](std::size_t i) {
    std::size_t last_noun = i;
    std::size_t j = i;
    while (j < end && (is_nominal(j) || tag_at(j) == PosTag::SYM)) {
      if (is_noun(tag_at(j))) last_noun = j;
      ++j;
    }
    return last_noun;
  };

  // --- Root selection ----------------------------------------------------
  std::ptrdiff_t root = -1;
  bool after_to = false;
  for (std::size_t i = begin; i < end; ++i) {
    const PosTag t = tag_at(i);
    if (t == PosTag::TO) {
      after_to = true;
      continue;
    }
    if (is_finite_verb(t) && !after_to && !is_be_form(tokens[i].lower)) {
      root = static_cast<std::ptrdiff_t>(i);
      break;
    }
    if (t != PosTag::RB && t != PosTag::PUNCT) after_to = false;
  }
  if (root < 0) {
    // Participles / gerunds / "to VB" complements can still head the clause.
    for (std::size_t i = begin; i < end; ++i) {
      const PosTag t = tag_at(i);
      if (t == PosTag::VBN || t == PosTag::VBG || t == PosTag::VB) {
        root = static_cast<std::ptrdiff_t>(i);
        break;
      }
    }
  }
  if (root < 0) {
    // Nominal clause ("Down to the last merge-pass"): no operation derivable.
    for (std::size_t i = begin; i < end; ++i) {
      if (is_noun(tag_at(i))) cp.root = static_cast<std::ptrdiff_t>(np_head(i));
      if (cp.root >= 0) break;
    }
    cp.nominal_root = true;
    if (cp.root >= 0)
      cp.deps.push_back({static_cast<std::size_t>(cp.root), static_cast<std::size_t>(cp.root),
                         Relation::Root});
    return cp;
  }

  cp.root = root;
  const std::size_t r = static_cast<std::size_t>(root);
  cp.deps.push_back({r, r, Relation::Root});

  // --- xcomp: "<gov> to VB" where gov is the root or an xcomp-taking word.
  // If the root itself is a bare VB introduced by TO preceded by an
  // xcomp-taking word ("about to shuffle"), record gov -> root as xcomp.
  for (std::size_t i = r + 1; i < end; ++i) {
    if (tag_at(i) != PosTag::TO) continue;
    for (std::size_t j = i + 1; j < end; ++j) {
      if (tag_at(j) == PosTag::RB) continue;
      if (is_verb(tag_at(j))) cp.deps.push_back({r, j, Relation::Xcomp});
      break;
    }
  }
  if (tag_at(r) == PosTag::VB && r >= begin + 2 && tag_at(r - 1) == PosTag::TO &&
      takes_xcomp(tokens[r - 2].lower)) {
    cp.deps.push_back({r - 2, r, Relation::Xcomp});
  }

  // --- Passive detection ---------------------------------------------------
  bool passive = false;
  if (tag_at(r) == PosTag::VBN) {
    // be-form auxiliary before the root, or an explicit "by"-agent after it.
    for (std::size_t i = begin; i < r; ++i) {
      if (is_be_form(tokens[i].lower)) passive = true;
    }
    for (std::size_t i = r + 1; i < end; ++i) {
      if (tokens[i].lower == "by") passive = true;
    }
    // Clause-initial participle with no preceding noun ("Finished task 1.0")
    // is an active elided-subject form, not a passive.
    bool noun_before = false;
    for (std::size_t i = begin; i < r; ++i) noun_before |= is_noun(tag_at(i));
    if (!noun_before) passive = false;
  }
  cp.passive = passive;

  // --- Subject: nearest noun-phrase head before the root (not crossing
  // another verb) --------------------------------------------------------
  std::ptrdiff_t subj = -1;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(r) - 1;
       i >= static_cast<std::ptrdiff_t>(begin); --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (is_verb(tag_at(idx)) && !is_be_form(tokens[idx].lower)) break;
    if (is_noun(tag_at(idx))) {
      subj = i;
      break;
    }
  }
  if (subj >= 0) {
    cp.deps.push_back(
        {r, static_cast<std::size_t>(subj), passive ? Relation::Nsubjpass : Relation::Nsubj});
  }

  // --- Objects after the predicate ----------------------------------------
  // Scan from the rightmost predicate (root or its xcomp) forward.
  std::size_t pred = r;
  for (const auto& d : cp.deps) {
    if (d.rel == Relation::Xcomp && d.dependent > pred) pred = d.dependent;
  }
  std::vector<std::size_t> bare_nps;  // NPs with no preposition in front
  bool saw_prep = false;
  std::size_t i = pred + 1;
  while (i < end) {
    const PosTag t = tag_at(i);
    if (t == PosTag::IN || t == PosTag::TO) {
      saw_prep = true;
      ++i;
      continue;
    }
    if (tokens[i].lower == "by" && passive) {
      saw_prep = true;
      ++i;
      continue;
    }
    if (is_noun(t)) {
      const std::size_t head_idx = np_head(i);
      if (saw_prep) {
        cp.deps.push_back({pred, head_idx, Relation::Nmod});
      } else {
        bare_nps.push_back(head_idx);
      }
      // Skip past the whole NP run.
      std::size_t j = i;
      while (j < end && (is_nominal(j) || tag_at(j) == PosTag::SYM)) ++j;
      i = j;
      saw_prep = false;
      continue;
    }
    if (is_verb(t) && static_cast<std::ptrdiff_t>(i) != cp.dependent_of(r, Relation::Xcomp)) {
      break;  // second predicate — stay within this clause's first predicate
    }
    if (t == PosTag::PUNCT && tokens[i].text != ",") {
      break;  // parentheticals and trailing punctuation end the object scan
    }
    if (t != PosTag::DT && t != PosTag::JJ && t != PosTag::CD && t != PosTag::RB &&
        t != PosTag::PUNCT && t != PosTag::SYM && t != PosTag::PRPS) {
      saw_prep = false;
    }
    ++i;
  }
  // Double-object "send driver the result": first bare NP is iobj, second
  // dobj; a single bare NP is the dobj.
  if (bare_nps.size() >= 2) {
    cp.deps.push_back({pred, bare_nps[0], Relation::Iobj});
    cp.deps.push_back({pred, bare_nps[1], Relation::Dobj});
  } else if (bare_nps.size() == 1) {
    cp.deps.push_back({pred, bare_nps[0], Relation::Dobj});
  }

  return cp;
}

}  // namespace intellog::nlp
