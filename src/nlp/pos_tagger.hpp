// Part-of-speech tagger for log messages (Penn Treebank tag set).
//
// Pipeline position (§3): IntelLog never tags a log key directly — the
// asterisks would confuse any tagger — it tags a *sample log message* and
// transfers the tags back onto the key (Fig. 3). This tagger implements the
// sample-message side: lexicon lookup, morphological suffix rules for
// unknown words, log-specific token classes (identifiers, socket addresses,
// paths tag as NNP; numerals as CD), then Brill-style contextual repair
// rules to resolve noun/verb homonyms ("map", "read", "shuffle", ...).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "nlp/lexicon.hpp"
#include "nlp/token.hpp"

namespace intellog::nlp {

class PosTagger {
 public:
  /// Uses the built-in systems-log lexicon.
  PosTagger();
  /// Uses a caller-supplied lexicon (user extension point).
  explicit PosTagger(Lexicon lexicon);

  /// Tags a pre-tokenized message.
  std::vector<Token> tag(const std::vector<std::string>& words) const;

  /// Tokenizes and tags a raw message.
  std::vector<Token> tag_message(std::string_view message) const;

  const Lexicon& lexicon() const { return lexicon_; }
  Lexicon& lexicon() { return lexicon_; }

 private:
  PosTag initial_tag(const std::string& word, const std::string& lower, bool sentence_start) const;
  void contextual_pass(std::vector<Token>& tokens) const;

  Lexicon lexicon_;
};

}  // namespace intellog::nlp
