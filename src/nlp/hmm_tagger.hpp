// Bigram hidden-Markov-model POS tagger with Viterbi decoding.
//
// A statistical alternative to the rule tagger, matching the tooling class
// the paper used (OpenNLP ships maxent/perceptron models). There is no
// treebank of log messages to train on, so the intended use is
// *bootstrapping*: tag a large unlabeled log corpus with the rule tagger
// and fit the HMM to its output. The HMM then generalizes through its
// transition structure — it can out-vote the bootstrap tagger's word-level
// mistakes in contexts the rules never anticipated, and it degrades
// gracefully on unknown words through a suffix-based emission back-off.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nlp/pos_tagger.hpp"
#include "nlp/token.hpp"

namespace intellog::nlp {

class HmmTagger {
 public:
  /// Number of distinct PosTag states.
  static constexpr std::size_t kTags = 23;

  /// Fits transition/emission counts from tagged sentences.
  void train(const std::vector<std::vector<Token>>& tagged_sentences);

  /// Bootstraps from a rule tagger over unlabeled messages.
  void bootstrap(const PosTagger& teacher, const std::vector<std::string>& messages);

  /// Viterbi-decodes a token sequence. Requires train()/bootstrap() first.
  std::vector<Token> tag(const std::vector<std::string>& words) const;
  std::vector<Token> tag_message(std::string_view message) const;

  bool trained() const { return trained_; }
  std::size_t vocabulary_size() const { return emissions_.size(); }

  /// Fraction of tokens on which this tagger agrees with `other` over the
  /// given messages (evaluation helper).
  double agreement(const PosTagger& other, const std::vector<std::string>& messages) const;

 private:
  /// log P(tag | prev); add-one smoothed.
  std::array<std::array<double, kTags>, kTags> log_transition_{};
  std::array<double, kTags> log_initial_{};
  /// word -> per-tag log emission probability (known words).
  std::unordered_map<std::string, std::array<double, kTags>> emissions_;
  /// 3-char-suffix back-off emission model for unknown words.
  std::unordered_map<std::string, std::array<double, kTags>> suffix_emissions_;
  std::array<double, kTags> open_class_prior_{};  ///< last-resort back-off
  bool trained_ = false;

  const std::array<double, kTags>* emission_row(const std::string& lower) const;
};

}  // namespace intellog::nlp
