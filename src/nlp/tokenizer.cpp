#include "nlp/tokenizer.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace intellog::nlp {

namespace {

bool is_open_punct(char c) { return c == '[' || c == '(' || c == '{' || c == '"' || c == '\''; }
bool is_close_punct(char c) {
  return c == ']' || c == ')' || c == '}' || c == '"' || c == '\'' || c == ',' || c == '.' ||
         c == ';' || c == '!' || c == '?' || c == ':';
}

bool looks_like_host_port(std::string_view s) {
  // letters/digits/dots/dashes, a single ':', digits after it.
  const std::size_t colon = s.find(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 >= s.size()) return false;
  if (s.find(':', colon + 1) != std::string_view::npos) return false;
  for (char c : s.substr(0, colon)) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' && c != '-') return false;
  }
  return common::is_all_digits(s.substr(colon + 1));
}

// "4ms" / "128MB" / "2.5s" -> number + unit.
bool split_number_unit(std::string_view s, std::string& num, std::string& unit) {
  std::size_t i = 0;
  bool dot = false;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || (s[i] == '.' && !dot))) {
    if (s[i] == '.') dot = true;
    ++i;
  }
  if (i == 0 || i == s.size()) return false;
  const std::string_view tail = s.substr(i);
  if (!common::has_letter(tail)) return false;
  for (char c : tail) {
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '%') return false;
  }
  // Mixed tokens where digits resume after letters (e.g. "e12a3") are
  // identifiers, not number+unit — the loop above already rejects them
  // because the tail must be all-alpha.
  num = std::string(s.substr(0, i));
  // A bare trailing '.' captured into the number ("4." from "4.") is noise.
  if (!num.empty() && num.back() == '.') num.pop_back();
  unit = std::string(tail);
  return true;
}

void emit_core(std::string_view core, std::vector<std::string>& out) {
  if (core.empty()) return;
  if (is_atomic_token(core)) {
    out.emplace_back(core);
    return;
  }
  // '#' separates into its own SYM token: "fetcher#1" -> fetcher # 1.
  const std::size_t hash = core.find('#');
  if (hash != std::string_view::npos) {
    emit_core(core.substr(0, hash), out);
    out.emplace_back("#");
    emit_core(core.substr(hash + 1), out);
    return;
  }
  std::string num, unit;
  if (split_number_unit(core, num, unit)) {
    out.push_back(std::move(num));
    out.push_back(std::move(unit));
    return;
  }
  // "=" splits key=value style fragments.
  const std::size_t eq = core.find('=');
  if (eq != std::string_view::npos) {
    emit_core(core.substr(0, eq), out);
    out.emplace_back("=");
    emit_core(core.substr(eq + 1), out);
    return;
  }
  out.emplace_back(core);
}

}  // namespace

bool is_atomic_token(std::string_view token) {
  if (token.find("://") != std::string_view::npos) return true;  // hdfs://, http://
  if (!token.empty() && token.front() == '/') return true;       // absolute path
  if (looks_like_host_port(token)) return true;                  // host:port
  if (token.find('_') != std::string_view::npos) return true;    // attempt_01 etc.
  return false;
}

std::vector<std::string> tokenize(std::string_view message) {
  std::vector<std::string> out;
  for (const std::string& raw : common::split_ws(message)) {
    std::string_view piece = raw;
    // Peel leading punctuation.
    std::vector<char> opens;
    while (!piece.empty() && is_open_punct(piece.front())) {
      opens.push_back(piece.front());
      piece.remove_prefix(1);
    }
    // Peel trailing punctuation — but never break an atomic token from the
    // right unless the final char cannot belong to it (',' '.' after digits
    // at end of sentence are genuinely sentence punctuation, except a port
    // or a path must keep its internals; we only strip chars at the very
    // end that leave a still-well-formed core).
    std::vector<char> closes;
    while (!piece.empty() && is_close_punct(piece.back())) {
      // ':' mid-token forms host:port; only strip a trailing ':'.
      if (piece.back() == ':' && piece.size() == 1) break;
      // Keep a '.' that is an interior decimal point ("1.0" never reaches
      // here since '.' is at the end); "1.0." sheds only the final dot.
      if (is_atomic_token(piece) && piece.back() != ',' && piece.back() != '.' &&
          piece.back() != ':')
        break;
      closes.push_back(piece.back());
      piece.remove_suffix(1);
    }
    for (char c : opens) out.emplace_back(1, c);
    emit_core(piece, out);
    for (auto it = closes.rbegin(); it != closes.rend(); ++it) out.emplace_back(1, *it);
  }
  return out;
}

}  // namespace intellog::nlp
