// Token and Penn Treebank part-of-speech tag representation.
//
// The paper tags log-key words with the Penn Treebank tag set (§3, [24]) and
// consumes a small subset downstream: the noun family (NN/NNS/NNP/NNPS) and
// adjectives (JJ) for the Table-2 entity patterns, verbs for predicates,
// IN for the "noun preposition noun" pattern and nmod attachment, and CD for
// numeric fields.
#pragma once

#include <string>
#include <string_view>

namespace intellog::nlp {

/// The Penn Treebank tags this pipeline distinguishes. Tags we never need to
/// tell apart (e.g. PDT vs DT) collapse onto the nearest member.
enum class PosTag {
  NN,     ///< noun, singular
  NNS,    ///< noun, plural
  NNP,    ///< proper noun, singular
  NNPS,   ///< proper noun, plural
  JJ,     ///< adjective
  VB,     ///< verb, base form
  VBD,    ///< verb, past tense
  VBG,    ///< verb, gerund/present participle
  VBN,    ///< verb, past participle
  VBP,    ///< verb, non-3rd person singular present
  VBZ,    ///< verb, 3rd person singular present
  MD,     ///< modal
  IN,     ///< preposition / subordinating conjunction
  TO,     ///< "to"
  DT,     ///< determiner
  CD,     ///< cardinal number
  RB,     ///< adverb
  PRP,    ///< personal pronoun
  PRPS,   ///< possessive pronoun (PRP$)
  CC,     ///< coordinating conjunction
  SYM,    ///< symbol (#, %, ...)
  PUNCT,  ///< punctuation
  FW,     ///< foreign/unknown word
};

/// Canonical PTB spelling of a tag ("PRP$" for PRPS, "." for PUNCT).
std::string_view to_string(PosTag tag);
/// Parses a PTB tag name; unknown names map to FW.
PosTag pos_from_string(std::string_view name);

/// True for NN / NNS / NNP / NNPS — the paper's Table 2 folds all four
/// noun tags into its 'NN' pattern element.
bool is_noun(PosTag tag);
/// True for any VB* tag.
bool is_verb(PosTag tag);
/// True for a finite verb form that can head a clause (VBZ/VBP/VBD).
bool is_finite_verb(PosTag tag);
bool is_adjective(PosTag tag);

/// A single token of a log message with its assigned POS tag.
struct Token {
  std::string text;   ///< original spelling
  std::string lower;  ///< lower-cased spelling (lookup key)
  PosTag tag = PosTag::FW;

  Token() = default;
  explicit Token(std::string t);
};

}  // namespace intellog::nlp
