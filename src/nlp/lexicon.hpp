// Embedded part-of-speech lexicon for systems-log vocabulary.
//
// Replaces the paper's OpenNLP model (see DESIGN.md substitution table).
// The lexicon stores, per spelling, the set of PTB tags the word can take
// plus its preferred noun/verb readings; the tagger's contextual rules pick
// among them. Verb entries are generated morphologically from base forms
// (3rd-person -s, past, participle, gerund), nouns get auto-plurals, so the
// table below stays compact while covering every inflection the simulated
// systems' log statements use.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "nlp/token.hpp"

namespace intellog::nlp {

/// What the lexicon knows about one spelling.
struct LexEntry {
  std::uint32_t tag_mask = 0;        ///< bitmask over PosTag values
  PosTag primary = PosTag::NN;       ///< tag to use absent other evidence
  PosTag noun_reading = PosTag::NN;  ///< tag when context forces a noun
  PosTag verb_reading = PosTag::VB;  ///< tag when context forces a verb

  bool can_be(PosTag t) const { return (tag_mask >> static_cast<unsigned>(t)) & 1u; }
  bool can_be_noun() const { return can_be(PosTag::NN) || can_be(PosTag::NNS); }
  bool can_be_verb() const {
    return can_be(PosTag::VB) || can_be(PosTag::VBD) || can_be(PosTag::VBG) ||
           can_be(PosTag::VBN) || can_be(PosTag::VBP) || can_be(PosTag::VBZ);
  }
  bool can_be_adjective() const { return can_be(PosTag::JJ); }
};

/// Immutable after construction; cheap hash lookups (lower-cased keys).
class Lexicon {
 public:
  /// Builds the built-in systems-log lexicon.
  Lexicon();

  /// Looks a (lower-cased) spelling up; nullopt when unknown.
  std::optional<LexEntry> lookup(std::string_view lower_word) const;

  /// Registers an additional word (user extension point, §3.1 "users can
  /// define their own filters"). Merges with any existing entry.
  void add(std::string_view word, PosTag tag);

  /// Registers a verb with explicit principal parts; inflections are
  /// generated (3sg / past / participle / gerund).
  void add_verb(std::string_view base, std::string_view past = {},
                std::string_view participle = {}, std::string_view gerund = {},
                std::string_view third = {});

  /// Registers a noun and its plural (auto-generated unless given).
  void add_noun(std::string_view singular, std::string_view plural = {});

  /// Base form of an inflected word recorded at registration time
  /// ("retried" -> "retry", "vertices" -> "vertex"); nullopt when unknown.
  std::optional<std::string> lemma(std::string_view lower_word) const;

  std::size_t size() const { return entries_.size(); }

 private:
  void add_with_readings(std::string_view word, PosTag tag, bool as_primary);
  void record_lemma(std::string_view form, std::string_view base);
  std::unordered_map<std::string, LexEntry> entries_;
  std::unordered_map<std::string, std::string> lemmas_;
};

/// Regular 3rd-person singular of a verb / plural of a noun ("fetch" ->
/// "fetches", "registry" -> "registries").
std::string regular_s_form(std::string_view base);
/// Regular past tense ("free" -> "freed", "retry" -> "retried").
std::string regular_past(std::string_view base);
/// Regular gerund ("store" -> "storing", "read" -> "reading").
std::string regular_gerund(std::string_view base);

}  // namespace intellog::nlp
