// Camel-case word filter (§3.1).
//
// Entities in logs are often class names from the source code —
// "MapTask" -> "map task", "BlockManagerEndpoint" -> "block manager
// endpoint". Acronym runs stay together: "NMTokenCache" -> "nm token cache".
// Users can register additional naming-convention filters (snake_case is
// built in as an example of the extension point).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace intellog::nlp {

/// Splits a camel-case word into lower-cased parts. A word with no internal
/// case transition comes back as a single lower-cased part.
std::vector<std::string> split_camel_case(std::string_view word);

/// True if the word has at least one lower->upper or acronym->word boundary,
/// i.e. split_camel_case would produce 2+ parts.
bool is_camel_case(std::string_view word);

/// A pluggable naming-convention filter: word -> phrase parts (empty when
/// the filter does not apply).
using NamingFilter = std::function<std::vector<std::string>(std::string_view)>;

/// Built-in snake_case filter ("map_task" -> "map task"); only applies to
/// all-letter words (identifier-like tokens with digits are left alone).
std::vector<std::string> split_snake_case(std::string_view word);

}  // namespace intellog::nlp
