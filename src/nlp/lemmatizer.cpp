#include "nlp/lemmatizer.hpp"

#include "common/strings.hpp"

namespace intellog::nlp {

std::string Lemmatizer::lemma(std::string_view lower_word) const {
  if (lexicon_) {
    if (auto base = lexicon_->lemma(lower_word)) return *base;
    // A word the lexicon knows in this exact spelling is already a base form.
    if (lexicon_->lookup(lower_word)) return std::string(lower_word);
  }
  std::string w(lower_word);
  // Conservative plural stripping for unknown nouns.
  if (w.size() > 4 && common::ends_with(w, "ies")) {
    w.erase(w.size() - 3);
    return w + "y";
  }
  if (w.size() > 4 && (common::ends_with(w, "ches") || common::ends_with(w, "shes") ||
                       common::ends_with(w, "sses") || common::ends_with(w, "xes") ||
                       common::ends_with(w, "zes"))) {
    w.erase(w.size() - 2);
    return w;
  }
  if (w.size() > 3 && w.back() == 's' && !common::ends_with(w, "ss") &&
      !common::ends_with(w, "us") && !common::ends_with(w, "is")) {
    w.pop_back();
    return w;
  }
  return w;
}

std::vector<std::string> Lemmatizer::lemmatize_phrase(std::vector<std::string> words) const {
  if (!words.empty()) words.back() = lemma(common::to_lower(words.back()));
  for (auto& w : words) w = common::to_lower(w);
  return words;
}

}  // namespace intellog::nlp
