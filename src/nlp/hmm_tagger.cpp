#include "nlp/hmm_tagger.hpp"

#include <cmath>
#include <limits>

#include "common/strings.hpp"
#include "nlp/tokenizer.hpp"

namespace intellog::nlp {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

std::size_t tag_index(PosTag t) { return static_cast<std::size_t>(t); }
PosTag index_tag(std::size_t i) { return static_cast<PosTag>(i); }

std::string suffix3(const std::string& lower) {
  return lower.size() <= 3 ? lower : lower.substr(lower.size() - 3);
}

/// Normalizes a count row into add-one-smoothed log probabilities.
template <typename Row>
void to_log_probs(Row& row, double smoothing = 1.0) {
  double total = 0.0;
  for (const double c : row) total += c;
  const double denom = total + smoothing * static_cast<double>(row.size());
  for (auto& c : row) c = std::log((c + smoothing) / denom);
}

}  // namespace

void HmmTagger::train(const std::vector<std::vector<Token>>& tagged_sentences) {
  std::array<std::array<double, kTags>, kTags> trans{};
  std::array<double, kTags> init{};
  std::unordered_map<std::string, std::array<double, kTags>> emit;
  std::unordered_map<std::string, std::array<double, kTags>> suffix_emit;
  std::array<double, kTags> open{};

  for (const auto& sentence : tagged_sentences) {
    PosTag prev = PosTag::FW;
    bool first = true;
    for (const Token& tok : sentence) {
      const std::size_t t = tag_index(tok.tag);
      if (first) {
        init[t] += 1.0;
        first = false;
      } else {
        trans[tag_index(prev)][t] += 1.0;
      }
      prev = tok.tag;
      emit[tok.lower][t] += 1.0;
      suffix_emit[suffix3(tok.lower)][t] += 1.0;
      // Open-class prior: what tags do rare words take? Approximate with
      // the distribution over nouns/verbs/adjectives only.
      if (is_noun(tok.tag) || is_verb(tok.tag) || is_adjective(tok.tag)) open[t] += 1.0;
    }
  }

  for (auto& row : trans) to_log_probs(row);
  to_log_probs(init);
  // Emissions: P(word | tag) would need per-tag totals; using the
  // word-conditional P(tag | word) as the score works for decoding because
  // we compare tags for a fixed word (a standard "conditional HMM" choice
  // that sidesteps vocabulary-size normalization).
  for (auto& [w, row] : emit) {
    (void)w;
    to_log_probs(row, 0.1);
  }
  for (auto& [sfx, row] : suffix_emit) {
    (void)sfx;
    to_log_probs(row, 0.5);
  }
  to_log_probs(open);

  log_transition_ = trans;
  log_initial_ = init;
  emissions_ = std::move(emit);
  suffix_emissions_ = std::move(suffix_emit);
  open_class_prior_ = open;
  trained_ = true;
}

void HmmTagger::bootstrap(const PosTagger& teacher, const std::vector<std::string>& messages) {
  std::vector<std::vector<Token>> tagged;
  tagged.reserve(messages.size());
  for (const auto& msg : messages) tagged.push_back(teacher.tag_message(msg));
  train(tagged);
}

const std::array<double, HmmTagger::kTags>* HmmTagger::emission_row(
    const std::string& lower) const {
  if (const auto it = emissions_.find(lower); it != emissions_.end()) return &it->second;
  if (const auto it = suffix_emissions_.find(suffix3(lower)); it != suffix_emissions_.end()) {
    return &it->second;
  }
  return &open_class_prior_;
}

std::vector<Token> HmmTagger::tag(const std::vector<std::string>& words) const {
  std::vector<Token> out;
  out.reserve(words.size());
  if (!trained_ || words.empty()) {
    for (const auto& w : words) out.emplace_back(w);
    return out;
  }

  const std::size_t n = words.size();
  std::vector<std::array<double, kTags>> score(n);
  std::vector<std::array<std::size_t, kTags>> back(n);
  std::vector<Token> tokens;
  tokens.reserve(n);
  for (const auto& w : words) tokens.emplace_back(w);

  // Viterbi forward pass.
  {
    const auto* em = emission_row(tokens[0].lower);
    for (std::size_t t = 0; t < kTags; ++t) score[0][t] = log_initial_[t] + (*em)[t];
  }
  for (std::size_t i = 1; i < n; ++i) {
    const auto* em = emission_row(tokens[i].lower);
    for (std::size_t t = 0; t < kTags; ++t) {
      double best = kNegInf;
      std::size_t best_prev = 0;
      for (std::size_t p = 0; p < kTags; ++p) {
        const double s = score[i - 1][p] + log_transition_[p][t];
        if (s > best) {
          best = s;
          best_prev = p;
        }
      }
      score[i][t] = best + (*em)[t];
      back[i][t] = best_prev;
    }
  }

  // Backtrace.
  std::size_t cur = 0;
  double best = kNegInf;
  for (std::size_t t = 0; t < kTags; ++t) {
    if (score[n - 1][t] > best) {
      best = score[n - 1][t];
      cur = t;
    }
  }
  std::vector<std::size_t> path(n);
  path[n - 1] = cur;
  for (std::size_t i = n - 1; i > 0; --i) {
    cur = back[i][cur];
    path[i - 1] = cur;
  }
  for (std::size_t i = 0; i < n; ++i) tokens[i].tag = index_tag(path[i]);
  return tokens;
}

std::vector<Token> HmmTagger::tag_message(std::string_view message) const {
  return tag(tokenize(message));
}

double HmmTagger::agreement(const PosTagger& other,
                            const std::vector<std::string>& messages) const {
  std::size_t same = 0, total = 0;
  for (const auto& msg : messages) {
    const auto a = tag_message(msg);
    const auto b = other.tag_message(msg);
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      ++total;
      same += a[i].tag == b[i].tag;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(same) / static_cast<double>(total);
}

}  // namespace intellog::nlp
