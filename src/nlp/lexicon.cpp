#include "nlp/lexicon.hpp"

#include "common/strings.hpp"

namespace intellog::nlp {

namespace {

bool ends_with_any(std::string_view s, std::initializer_list<std::string_view> suffixes) {
  for (const auto suf : suffixes) {
    if (common::ends_with(s, suf)) return true;
  }
  return false;
}

bool is_vowel(char c) { return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u'; }

}  // namespace

std::string regular_s_form(std::string_view base) {
  std::string b(base);
  if (ends_with_any(b, {"s", "x", "z", "ch", "sh"})) return b + "es";
  if (b.size() >= 2 && b.back() == 'y' && !is_vowel(b[b.size() - 2])) {
    b.pop_back();
    return b + "ies";
  }
  return b + "s";
}

std::string regular_past(std::string_view base) {
  std::string b(base);
  if (!b.empty() && b.back() == 'e') return b + "d";
  if (b.size() >= 2 && b.back() == 'y' && !is_vowel(b[b.size() - 2])) {
    b.pop_back();
    return b + "ied";
  }
  return b + "ed";
}

std::string regular_gerund(std::string_view base) {
  std::string b(base);
  if (b.size() >= 2 && b.back() == 'e' && b[b.size() - 2] != 'e') b.pop_back();
  return b + "ing";
}

void Lexicon::add_with_readings(std::string_view word, PosTag tag, bool as_primary) {
  auto& e = entries_[std::string(common::to_lower(word))];
  const bool fresh = e.tag_mask == 0;
  e.tag_mask |= 1u << static_cast<unsigned>(tag);
  if (fresh || as_primary) e.primary = tag;
  if (is_noun(tag)) e.noun_reading = tag;
  if (is_verb(tag)) e.verb_reading = tag;
}

void Lexicon::add(std::string_view word, PosTag tag) { add_with_readings(word, tag, false); }

void Lexicon::record_lemma(std::string_view form, std::string_view base) {
  const std::string key = common::to_lower(form);
  const std::string val = common::to_lower(base);
  if (key != val) lemmas_.emplace(key, val);
}

std::optional<std::string> Lexicon::lemma(std::string_view lower_word) const {
  const auto it = lemmas_.find(std::string(lower_word));
  if (it == lemmas_.end()) return std::nullopt;
  return it->second;
}

void Lexicon::add_verb(std::string_view base, std::string_view past, std::string_view participle,
                       std::string_view gerund, std::string_view third) {
  const std::string past_s = past.empty() ? regular_past(base) : std::string(past);
  const std::string part_s = participle.empty() ? past_s : std::string(participle);
  const std::string ger_s = gerund.empty() ? regular_gerund(base) : std::string(gerund);
  const std::string third_s = third.empty() ? regular_s_form(base) : std::string(third);
  add_with_readings(base, PosTag::VB, false);
  add_with_readings(base, PosTag::VBP, false);
  add_with_readings(past_s, PosTag::VBD, false);
  add_with_readings(part_s, PosTag::VBN, false);
  add_with_readings(ger_s, PosTag::VBG, false);
  add_with_readings(third_s, PosTag::VBZ, false);
  record_lemma(past_s, base);
  record_lemma(part_s, base);
  record_lemma(ger_s, base);
  record_lemma(third_s, base);
}

void Lexicon::add_noun(std::string_view singular, std::string_view plural) {
  const std::string plural_s = plural.empty() ? regular_s_form(singular) : std::string(plural);
  // Nouns are primary readings: a word listed both ways defaults to noun
  // (log keys mention components far more often than they use the homonym
  // verb), and the tagger's context rules switch to the verb reading.
  add_with_readings(singular, PosTag::NN, true);
  add_with_readings(plural_s, PosTag::NNS, true);
  record_lemma(plural_s, singular);
}

std::optional<LexEntry> Lexicon::lookup(std::string_view lower_word) const {
  const auto it = entries_.find(std::string(lower_word));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

Lexicon::Lexicon() {
  // ---- Closed classes -------------------------------------------------
  for (const char* w : {"the", "a", "an", "this", "that", "these", "those", "all", "some",
                        "any", "no", "each", "every", "another", "such", "both"})
    add(w, PosTag::DT);
  for (const char* w : {"in", "on", "at", "of", "from", "for", "with", "by", "into", "onto",
                        "over", "under", "after", "before", "during", "via", "per", "within",
                        "without", "against", "between", "through", "as", "until", "since",
                        "across", "towards", "upon", "than", "if", "because", "while"})
    add(w, PosTag::IN);
  add("to", PosTag::TO);
  for (const char* w : {"and", "or", "but", "nor", "plus"}) add(w, PosTag::CC);
  for (const char* w : {"will", "can", "may", "must", "should", "would", "could", "might",
                        "shall", "cannot"})
    add(w, PosTag::MD);
  for (const char* w : {"it", "they", "we", "he", "she", "i", "you"}) add(w, PosTag::PRP);
  for (const char* w : {"its", "their", "our", "his", "her", "my", "your"}) add(w, PosTag::PRPS);
  for (const char* w :
       {"now", "already", "successfully", "finally", "currently", "again", "not", "down", "up",
        "only", "also", "still", "yet", "too", "about", "immediately", "asynchronously",
        "gracefully", "periodically", "locally", "remotely", "here", "there", "never", "soon",
        "out", "so", "far", "back", "forward", "away", "once", "twice"})
    add(w, PosTag::RB);
  add("non-empty", PosTag::JJ);
  add("in-memory", PosTag::JJ);
  add("on-disk", PosTag::JJ);

  // be / have / do — explicit forms.
  add("is", PosTag::VBZ);
  add("are", PosTag::VBP);
  add("was", PosTag::VBD);
  add("were", PosTag::VBD);
  add("be", PosTag::VB);
  add("been", PosTag::VBN);
  add("being", PosTag::VBG);
  add("has", PosTag::VBZ);
  add("have", PosTag::VBP);
  add("had", PosTag::VBD);
  add("does", PosTag::VBZ);
  add("do", PosTag::VBP);
  add("did", PosTag::VBD);
  add("done", PosTag::VBN);

  // ---- Verbs (systems-log predicates) ---------------------------------
  // Irregular principal parts given explicitly; the rest are generated.
  add_verb("read", "read", "read");
  add_verb("write", "wrote", "written", "writing");
  add_verb("send", "sent", "sent");
  add_verb("get", "got", "got", "getting");
  add_verb("put", "put", "put", "putting");
  add_verb("run", "ran", "run", "running");
  add_verb("begin", "began", "begun", "beginning");
  add_verb("find", "found", "found");
  add_verb("lose", "lost", "lost", "losing");
  add_verb("shut", "shut", "shut", "shutting");
  add_verb("set", "set", "set", "setting");
  add_verb("take", "took", "taken", "taking");
  add_verb("build", "built", "built");
  add_verb("bind", "bound", "bound");
  add_verb("keep", "kept", "kept");
  add_verb("stop", "stopped", "stopped", "stopping");
  add_verb("submit", "submitted", "submitted", "submitting");
  add_verb("commit", "committed", "committed", "committing");
  add_verb("spill", "spilled", "spilled", "spilling");
  add_verb("drop", "dropped", "dropped", "dropping");
  add_verb("skip", "skipped", "skipped", "skipping");
  add_verb("plan", "planned", "planned", "planning");
  add_verb("kill", "killed", "killed");
  add_verb("map", "mapped", "mapped", "mapping");
  add_verb("leave", "left", "left", "leaving");
  add_verb("output", "output", "output", "outputting");
  add_verb("go", "went", "gone", "going", "goes");
  add_verb("tell", "told", "told");
  add_verb("give", "gave", "given", "giving");
  add_verb("sleep", "slept", "slept");
  add_verb("forward", "forwarded", "forwarded");
  add_verb("parse", "parsed", "parsed", "parsing");
  add_verb("listen");
  add_verb("satisfy");
  add_verb("exist");
  add_verb("evict");
  add_verb("deprecate");
  add_verb("measure");
  add_verb("penalize");
  add_verb("restore");
  add_verb("stall");
  add_verb("generate");
  add_verb("pass", "passed", "passed", "passing", "passes");
  add_verb("swap", "swapped", "swapped", "swapping");
  add_verb("train");
  add_verb("join");
  for (const char* v :
       {"start", "launch", "register", "initialize", "fetch", "shuffle", "free", "complete",
        "finish", "assign", "receive", "connect", "fail", "retry", "allocate", "release",
        "schedule", "store", "save", "remove", "delete", "create", "open", "close", "clean",
        "transition", "report", "update", "process", "download", "upload", "succeed", "exit",
        "wait", "try", "load", "cache", "broadcast", "add", "disconnect", "request", "grant",
        "accept", "reject", "abort", "expire", "renew", "resolve", "copy", "clear", "flush",
        "ignore", "mark", "check", "verify", "recover", "restart", "respond", "reply", "notify",
        "move", "persist", "evict", "serialize", "deserialize", "compute", "execute",
        "terminate", "preempt", "decommission", "merge", "sort", "reduce", "use", "localize",
        "unregister", "configure", "invoke", "handle", "acquire", "refresh", "reserve",
        "contact", "identify", "consume", "produce", "return", "enable", "disable", "converge",
        "iterate", "rename", "validate", "authenticate", "enter", "reach", "detect", "time",
        "call", "command", "initiate", "compile", "aggregate", "disassociate", "spawn",
        "destroy", "attach", "detach", "claim", "collect", "instantiate", "finalize",
        "reconnect", "allow", "trigger", "route", "bump", "emit", "poll", "dispatch",
        "interrupt", "ping", "attempt", "remove"})
    add_verb(v);

  // ---- Nouns (components, resources, artifacts) ------------------------
  add_noun("process", "processes");
  add_noun("pass", "passes");
  add_noun("address", "addresses");
  add_noun("class", "classes");
  add_noun("progress", "progresses");
  add_noun("status", "statuses");
  add_noun("diagnostics", "diagnostics");
  add_noun("metrics", "metrics");
  add_noun("index", "indices");
  add_noun("vertex", "vertices");
  add_noun("child", "children");
  add_noun("datum", "data");
  add_noun("data", "data");
  add_noun("memory", "memories");
  add_noun("capability", "capabilities");
  add_noun("priority", "priorities");
  add_noun("property", "properties");
  add_noun("registry", "registries");
  add_noun("query", "queries");
  add_noun("retry", "retries");
  add_noun("byte", "bytes");
  add_noun("copy", "copies");
  for (const char* n :
       {"task", "job", "container", "executor", "driver", "block", "manager", "disk", "stage",
        "attempt", "output", "input", "fetcher", "host", "node", "system", "event", "file",
        "directory", "folder", "application", "master", "token", "resource", "queue",
        "partition", "record", "segment", "buffer", "service", "server", "client", "connection",
        "port", "endpoint", "rdd", "broadcast", "shuffle", "spill", "merge", "sort",
        "heartbeat", "session", "operator", "table", "dag", "state", "error", "exception",
        "failure", "result", "response", "request", "size", "length", "time", "timeout",
        "limit", "threshold", "level", "id", "version", "user", "group", "permission", "acl",
        "scheduler", "allocator", "tracker", "handler", "listener", "dispatcher", "committer",
        "reader", "writer", "stream", "socket", "channel", "thread", "worker", "core", "cpu",
        "configuration", "config", "value", "key", "path", "location", "store", "storage",
        "cache", "offset", "count", "number", "total", "rate", "signal", "command", "message",
        "log", "phase", "step", "round", "iteration", "model", "center", "centroid", "edge",
        "graph", "rank", "word", "report", "update", "cleanup", "setup", "shutdown",
        "localizer", "localization", "deletion", "recovery", "interval", "map", "reduce",
        "mapper", "reducer", "start", "end", "instance", "machine", "vm", "hypervisor",
        "compute", "image", "network", "interface", "volume", "flavor", "tenant", "quota",
        "usage", "allocation", "proxy", "daemon", "context", "environment", "credential",
        "secret", "label", "attribute", "column", "row", "object", "entry", "element", "batch",
        "window", "checkpoint", "lineage", "dependency", "accumulator", "variable", "closure",
        "function", "code", "source", "sink", "route", "header", "body", "payload", "chunk",
        "replica", "pipeline", "snapshot", "summary", "plan", "tree", "root", "leaf", "branch",
        "fetch", "free", "run", "read", "write", "load", "join", "filter", "expression",
        "sink", "web", "symlink"})
    add_noun(n);

  // ---- Adjectives -------------------------------------------------------
  for (const char* j :
       {"remote", "local", "final", "temporary", "new", "current", "available", "last", "next",
        "maximum", "minimum", "default", "pending", "active", "idle", "unhealthy", "healthy",
        "virtual", "physical", "empty", "full", "invalid", "valid", "unknown", "internal",
        "external", "native", "secure", "speculative", "sufficient", "insufficient", "slow",
        "fast", "ready", "successful", "unsuccessful", "initial", "intermediate", "additional",
        "unable", "responsive", "unresponsive", "stale", "fresh", "dirty", "primary",
        "secondary", "early", "late", "high", "low", "big", "small", "large", "whole", "main"})
    add(j, PosTag::JJ);

  // "total" / "free" / "complete" also act as adjectives in log phrasing
  // ("total size", "free memory", "executor complete") — and that reading
  // is the default; context rules recover the verb reading.
  add_with_readings("total", PosTag::JJ, /*as_primary=*/true);
  add_with_readings("free", PosTag::JJ, /*as_primary=*/true);
  add_with_readings("complete", PosTag::JJ, /*as_primary=*/true);
  add("running", PosTag::JJ);

  // ---- Units (tagged as nouns; the extractor holds the unit list) ------
  for (const char* u : {"ms", "msec", "msecs", "s", "sec", "secs", "seconds", "second",
                        "minutes", "minute", "b", "kb", "mb", "gb", "tb", "bytes", "kilobytes",
                        "megabytes", "gigabytes", "percent", "vcores", "vcore", "mhz"})
    add(u, PosTag::NN);
}

}  // namespace intellog::nlp
