#include "simsys/event_sim.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace intellog::simsys {

SessionBuilder::SessionBuilder(const TemplateCorpus& corpus, std::string container_id,
                               std::string node, std::uint64_t start_ms, common::Rng rng)
    : corpus_(corpus),
      container_id_(std::move(container_id)),
      node_(std::move(node)),
      now_ms_(start_ms),
      rng_(rng) {}

void SessionBuilder::emit(std::string_view tmpl_name, std::vector<std::string> values,
                          bool injected) {
  const LogTemplate& tmpl = corpus_.by_name(tmpl_name);
  logparse::LogRecord rec;
  logparse::GroundTruth truth;
  rec.content = tmpl.render(values, &truth);
  truth.system = corpus_.system();
  truth.injected_anomaly = injected;
  rec.truth = std::move(truth);
  rec.level = tmpl.level;
  rec.source = tmpl.source;
  rec.timestamp_ms = now_ms_;
  rec.container_id = container_id_;
  records_.push_back(std::move(rec));
  advance(1, 30);
}

void SessionBuilder::advance(std::uint64_t min_ms, std::uint64_t max_ms) {
  now_ms_ += min_ms + rng_.uniform(max_ms - min_ms + 1);
}

SessionBuilder SessionBuilder::fork(std::uint64_t offset_ms) {
  return SessionBuilder(corpus_, container_id_, node_, now_ms_ + offset_ms, rng_.fork());
}

void SessionBuilder::absorb(SessionBuilder&& thread) {
  records_.insert(records_.end(), std::make_move_iterator(thread.records_.begin()),
                  std::make_move_iterator(thread.records_.end()));
  now_ms_ = std::max(now_ms_, thread.now_ms_);
}

void SessionBuilder::truncate_after(std::uint64_t cutoff_ms) {
  std::erase_if(records_, [cutoff_ms](const logparse::LogRecord& r) {
    return r.timestamp_ms > cutoff_ms;
  });
  now_ms_ = std::min(now_ms_, cutoff_ms);
}

logparse::Session SessionBuilder::finish() {
  obs::Span span("simsys/session_finish", "simsys");
  std::stable_sort(records_.begin(), records_.end(),
                   [](const logparse::LogRecord& a, const logparse::LogRecord& b) {
                     return a.timestamp_ms < b.timestamp_ms;
                   });
  logparse::Session s;
  s.container_id = container_id_;
  s.system = corpus_.system();
  s.records = std::move(records_);
  return s;
}

}  // namespace intellog::simsys
