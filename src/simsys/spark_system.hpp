// Simulated Spark (modelled on Spark 2.1 executor/driver log statements).
//
// Reproduces the log-level behaviour the paper's evaluation depends on:
//  - every container session walks acl -> memory/directory/driver/block
//    setup -> task execution (with per-core task-runner threads whose logs
//    interleave) -> shutdown, matching the Fig. 8 HW-graph hierarchy;
//  - the BlockManager register/registered/initialized subroutine (s1), the
//    per-block storage subroutine (s2) and the identifier-less get/stop
//    subroutine (s3) of §6.3;
//  - task counts scale with input size, so session lengths vary (§6.4);
//  - insufficient container memory triggers 'spill' messages (the §6.4
//    performance-issue case), a slow shutdown can emit the rare
//    driver-disassociation line (the paper's false-positive mechanism), and
//    FaultPlan::spark19371_bug starves half the containers of tasks
//    (case 3).
#pragma once

#include "simsys/cluster.hpp"
#include "simsys/job_result.hpp"
#include "simsys/template_corpus.hpp"

namespace intellog::simsys {

/// The Spark template corpus (shared, built once).
const TemplateCorpus& spark_corpus();

class SparkJobSim {
 public:
  JobResult run(const JobSpec& spec, const ClusterSpec& cluster, const FaultPlan& fault) const;
};

}  // namespace intellog::simsys
