// Simulated Hadoop MapReduce (modelled on MapReduce 2.9 log statements).
//
// Three session shapes, matching a real YARN deployment:
//  - the MRAppMaster container (job lifecycle, container launches, task
//    transitions, plus frequent key-value status lines — MapReduce's
//    non-natural-language share in Table 1),
//  - mapper containers (MapTask metrics system, split processing, spills,
//    output commit),
//  - reducer containers (EventFetcher + parallel fetcher#k threads doing
//    the Fig. 1 shuffle subroutine, merge phase, reduce phase).
// A network/node failure makes fetchers fail against the victim host —
// the exact symptom the paper's case study 1 diagnoses via GroupBy.
#pragma once

#include "simsys/cluster.hpp"
#include "simsys/job_result.hpp"
#include "simsys/template_corpus.hpp"

namespace intellog::simsys {

const TemplateCorpus& mapreduce_corpus();

class MapReduceJobSim {
 public:
  JobResult run(const JobSpec& spec, const ClusterSpec& cluster, const FaultPlan& fault) const;
};

}  // namespace intellog::simsys
