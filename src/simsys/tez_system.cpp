#include "simsys/tez_system.hpp"

#include <algorithm>

#include "simsys/event_sim.hpp"

namespace intellog::simsys {

namespace {

TemplateCorpus build_tez_corpus() {
  TemplateCorpus c("tez");
  // --- DAGAppMaster ----------------------------------------------------------
  c.add("am.created", "INFO", "tez.dag.app.DAGAppMaster",
        "Created DAGAppMaster for application {I:APP}", {"dag app master", "application"},
        {"create"});
  c.add("am.submit", "INFO", "tez.dag.api.client.DAGClientServer",
        "Submitting dag to TezSession with applicationId {I:APP}",
        {"dag", "tez session", "application id"}, {"submit"});
  c.add("am.dag.running", "INFO", "tez.dag.app.dag.impl.DAGImpl",
        "DAG {I:DAG} transitioned from NEW to RUNNING", {"dag"}, {"transition"});
  c.add("am.vertex.init", "INFO", "tez.dag.app.dag.impl.VertexImpl",
        "Vertex {I:VERTEX} transitioned from {W} to {W}", {"vertex"}, {"transition"});
  c.add("am.vertex.tasks", "INFO", "tez.dag.app.dag.impl.VertexImpl",
        "numTasks={V} numCompletedTasks={V} numSucceededTasks={V}", {}, {},
        /*natural_language=*/false);
  c.add("am.dag.finished", "INFO", "tez.dag.app.dag.impl.DAGImpl",
        "DAG {I:DAG} finished with state {W}", {"dag", "state"}, {"finish"});
  c.add("am.query.compile", "INFO", "hive.ql.Driver",
        "Compiling query {I:QUERY}", {"query"}, {"compile"});
  c.add("am.query.exec", "INFO", "hive.ql.Driver",
        "Executing query on tez cluster", {"query", "tez cluster"}, {"execute"});

  // --- task containers ---------------------------------------------------------
  c.add("task.init", "INFO", "tez.runtime.task.TezTaskRunner",
        "Initializing task with taskAttemptId {I:ATTEMPT}", {"task", "task attempt id"},
        {"initialize"});
  c.add("task.start", "INFO", "tez.dag.app.dag.impl.TaskAttemptImpl",
        "TaskAttempt {I:ATTEMPT} started on container {I:CONTAINER}",
        {"task attempt", "container"}, {"start"});
  c.add("task.status", "INFO", "tez.runtime.task.TezTaskRunner",
        "taskProgress={V} recordsProcessed={V}", {}, {}, /*natural_language=*/false);
  c.add("task.output.commit", "INFO", "tez.runtime.api.impl.TezOutputContextImpl",
        "Output of vertex {I:VERTEX} committed to {L}", {"output of vertex"}, {"commit"});
  c.add("task.shuffle.assign", "INFO", "tez.runtime.library.common.shuffle.impl.ShuffleManager",
        "Shuffle assigned with {V} inputs", {"shuffle", "input"}, {"assign"});
  c.add("task.copy", "INFO", "tez.runtime.library.common.shuffle.Fetcher",
        "Copying {I:ATTEMPT} output from {L}", {"output"}, {"copy"});
  c.add("task.merge.files", "INFO", "tez.runtime.library.common.sort.impl.TezMerger",
        "Merging {V} files, {V} bytes from disk", {"file", "disk"}, {"merge"});
  // Nominal sentence -> missed operation (Tez has several, §6.2).
  c.add("task.merge.final", "INFO", "tez.runtime.library.common.sort.impl.TezMerger",
        "Final merge of {V} segments", {"final merge", "segment"}, {"merge"});
  c.add("task.complete", "INFO", "tez.dag.app.dag.impl.TaskAttemptImpl",
        "TaskAttempt {I:ATTEMPT} transitioned from RUNNING to SUCCEEDED", {"task attempt"},
        {"transition"});
  // The two vague Hive operator keys the paper quotes verbatim (§6.2):
  // grammatically odd, operations go missing.
  c.add("op.close.done", "INFO", "hive.ql.exec.tez.RecordProcessor",
        "{I:OP} Close done", {}, {"close"});
  c.add("op.finished.closing", "INFO", "hive.ql.exec.tez.RecordProcessor",
        "{I:OP} finished. Closing", {}, {"finish"});

  // --- additional templates ------------------------------------------------------
  c.add("am.query.parse", "INFO", "hive.ql.parse.ParseDriver",
        "Parsing command: {W}", {"command"}, {"parse"});
  c.add("am.query.semantic", "INFO", "hive.ql.parse.SemanticAnalyzer",
        "Semantic analysis completed in {V} ms", {"semantic analysis"}, {"complete"});
  c.add("am.query.jobs", "INFO", "hive.ql.Driver",
        "totalJobs={V} launchedJobs={V}", {}, {}, /*natural_language=*/false);
  c.add("am.dag.running2", "INFO", "tez.dag.app.dag.impl.DAGImpl",
        "Running DAG: {W}", {"dag"}, {"run"});
  c.add("am.vertex.create", "INFO", "tez.dag.app.dag.impl.VertexImpl",
        "Creating vertex {I:VERTEX} for plan node {W}", {"vertex", "plan node"}, {"create"});
  c.add("am.vertex.schedule", "INFO", "tez.dag.app.dag.impl.VertexImpl",
        "Scheduling {V} tasks for vertex {I:VERTEX}", {"task", "vertex"}, {"schedule"});
  c.add("am.route", "INFO", "tez.dag.app.dag.impl.VertexImpl",
        "Routing event {W} to vertex {I:VERTEX}", {"event", "vertex"}, {"route"});
  c.add("am.query.done", "INFO", "hive.ql.Driver",
        "Query {I:QUERY} completed successfully in {V} s", {"query"}, {"complete"});
  c.add("task.localize", "INFO", "tez.runtime.task.TezChild",
        "Localizing resources for container {I:CONTAINER}", {"resource", "container"},
        {"localize"});
  c.add("task.input.open", "INFO", "tez.runtime.api.impl.TezInputContextImpl",
        "Opening input {W} for vertex {I:VERTEX}", {"input", "vertex"}, {"open"});
  c.add("task.output.close", "INFO", "tez.runtime.api.impl.TezOutputContextImpl",
        "Closing output {W} for vertex {I:VERTEX}", {"output", "vertex"}, {"close"});
  c.add("op.init", "INFO", "hive.ql.exec.Operator",
        "Initializing operator {W}", {"operator"}, {"initialize"});
  c.add("op.rows.forward", "INFO", "hive.ql.exec.Operator",
        "{I:OP} forwarding {V} rows", {"row"}, {"forward"});
  c.add("op.rows.process", "INFO", "hive.ql.exec.tez.RecordProcessor",
        "Processed {V} rows in {V} ms", {"row"}, {"process"});
  c.add("op.rows.flush", "INFO", "hive.ql.exec.FileSinkOperator",
        "Flushing {V} rows to sink", {"row", "sink"}, {"flush"});
  c.add("shuffle.threads", "INFO", "tez.runtime.library.common.shuffle.impl.ShuffleManager",
        "Shuffle running with {V} threads", {"shuffle", "thread"}, {"run"});
  c.add("shuffle.fetcher.go", "INFO", "tez.runtime.library.common.shuffle.Fetcher",
        "Fetcher {I:FETCHER} going to fetch from {L}", {"fetcher"}, {"go", "fetch"});
  c.add("task.commit2", "INFO", "tez.runtime.task.TaskRunner2Callable",
        "Committing task output for {I:ATTEMPT}", {"task output"}, {"commit"});
  c.add("task.container.stop", "INFO", "tez.runtime.task.TezChild",
        "Stopping container after task completion", {"container", "task completion"}, {"stop"});
  c.add("task.counters", "INFO", "tez.common.counters.TezCounters",
        "FILE_BYTES_READ={V} HDFS_BYTES_READ={V} SPILLED_RECORDS={V}", {}, {},
        /*natural_language=*/false);

  // --- Hive query-operator pipeline (Tez's key population is dominated by
  // operator logging; Tez logs are short and well formatted, §6.2) --------
  c.add("op.self.init", "INFO", "hive.ql.exec.Operator",
        "Initializing Self operator {I:OP}", {"operator"}, {"initialize"});
  c.add("op.init.done", "INFO", "hive.ql.exec.Operator",
        "Initialization of operator {I:OP} done", {"initialization of operator"}, {"do"});
  c.add("op.map.begin", "INFO", "hive.ql.exec.MapOperator",
        "Executing map operator for vertex {I:VERTEX}", {"map operator", "vertex"},
        {"execute"});
  c.add("op.filter", "INFO", "hive.ql.exec.FilterOperator",
        "Filter operator {I:OP} passed {V} rows", {"filter operator", "row"}, {"pass"});
  c.add("op.join", "INFO", "hive.ql.exec.CommonJoinOperator",
        "Join operator {I:OP} produced {V} rows", {"join operator", "row"}, {"produce"});
  c.add("op.groupby", "INFO", "hive.ql.exec.GroupByOperator",
        "GroupBy operator {I:OP} aggregated {V} rows", {"group by operator", "row"},
        {"aggregate"});
  c.add("op.reduce.sink", "INFO", "hive.ql.exec.ReduceSinkOperator",
        "Reduce sink operator {I:OP} emitted {V} records", {"reduce sink operator", "record"},
        {"emit"});
  c.add("op.file.sink", "INFO", "hive.ql.exec.FileSinkOperator",
        "File sink operator writing to {L}", {"file sink operator"}, {"write"});
  c.add("op.limit", "INFO", "hive.ql.exec.LimitOperator",
        "Limit operator {I:OP} reached limit {V}", {"limit operator", "limit"}, {"reach"});
  c.add("op.hashtable", "INFO", "hive.ql.exec.MapJoinOperator",
        "Loading hash table from {L}", {"hash table"}, {"load"});
  c.add("op.plan.cache", "INFO", "hive.ql.Driver",
        "Using cached plan for query {I:QUERY}", {"plan", "query"}, {"use"});
  c.add("am.session.open", "INFO", "tez.client.TezClient",
        "Opening Tez session with id {I:SESSION}", {"tez session"}, {"open"});
  c.add("am.container.launch", "INFO", "tez.dag.app.launcher.ContainerLauncherImpl",
        "Launching container {I:CONTAINER} for execution", {"container", "execution"},
        {"launch"});
  c.add("am.container.reuse", "INFO", "tez.dag.app.rm.container.AMContainerImpl",
        "Reusing container {I:CONTAINER} for next task", {"container", "next task"},
        {"reuse"});
  c.add("am.taskcomm", "INFO", "tez.dag.app.TaskCommunicatorManager",
        "Registered task communicator for vertex {I:VERTEX}", {"task communicator", "vertex"},
        {"register"});
  // Clause-less status line (stays an Intel Key, no operation).
  c.add("shuffle.input.ready", "INFO",
        "tez.runtime.library.common.shuffle.impl.ShuffleManager",
        "Input {W} ready for consumption at vertex {I:VERTEX}",
        {"input", "consumption", "vertex"}, {});

  // --- anomaly-phase templates -------------------------------------------------
  c.add("task.fetch.fail", "ERROR", "tez.runtime.library.common.shuffle.Fetcher",
        "Failed to connect to {L} for input {I:ATTEMPT}", {"input"}, {"fail", "connect"});
  c.add("task.fetch.retry", "WARN", "tez.runtime.library.common.shuffle.Fetcher",
        "Retrying connect to {L} after {V} ms", {}, {"retry", "connect"});
  // Case 2.2: spill lines carrying a disk path (never seen in tuned training).
  c.add("task.spill.write", "WARN", "tez.runtime.library.common.sort.impl.PipelinedSorter",
        "Spill file written to {L}", {"spill file"}, {"write"});
  c.add("task.spill.records", "WARN", "tez.runtime.library.common.sort.impl.PipelinedSorter",
        "Spilling {V} records to disk because buffer is full", {"record", "disk", "buffer"},
        {"spill"});
  // Rare slow path (over-allocated detection configs only): §6.4 FP source.
  c.add("task.wait.interrupt", "WARN", "tez.runtime.task.TezTaskRunner",
        "Interrupted while waiting for task completion", {"task completion"}, {"interrupt",
        "wait"});
  return c;
}

}  // namespace

const TemplateCorpus& tez_corpus() {
  static const TemplateCorpus corpus = build_tez_corpus();
  return corpus;
}

JobResult TezJobSim::run(const JobSpec& spec, const ClusterSpec& cluster,
                         const FaultPlan& fault) const {
  JobResult result;
  result.spec = spec;
  result.fault = fault;

  common::Rng rng(spec.seed ^ 0x74657aULL);
  const TemplateCorpus& corpus = tez_corpus();

  const int num_containers = std::clamp(1 + spec.input_gb, 1, 35);
  const int num_vertices = 2 + static_cast<int>(rng.uniform(4));
  const bool spill_mode = !spec.memory_sufficient();

  const std::uint64_t job_start = 3600000ULL * (1 + rng.uniform(20));
  const std::uint64_t approx_span = 4000 + static_cast<std::uint64_t>(num_containers) * 300;
  const std::uint64_t fault_time =
      job_start + static_cast<std::uint64_t>(fault.at_fraction * static_cast<double>(approx_span));
  const std::string fault_host =
      fault.target_node >= 0 ? cluster.node_name(fault.target_node) : "";

  const std::string app_id = "application_" + std::to_string(1550100000 + spec.seed % 100000) +
                             "_" + std::to_string(1 + spec.seed % 89);
  const std::string dag_id = "dag_" + std::to_string(1550100000 + spec.seed % 100000) + "_1";
  const auto attempt_id = [&](int t) {
    return "attempt_" + std::to_string(1550100000 + spec.seed % 100000) + "_1_" +
           std::to_string(t) + "_0";
  };
  const auto container_id = [&](int i) {
    return "container_" + std::to_string(spec.seed % 100000) + "_03_" + std::to_string(i);
  };
  const auto vertex_id = [&](int v) { return "vertex_" + std::to_string(v); };

  const int total_containers = 1 + num_containers;
  const int abort_victim = fault.kind == ProblemKind::SessionAbort
                               ? static_cast<int>(rng.uniform(total_containers))
                               : -1;
  std::vector<int> placement(static_cast<std::size_t>(total_containers));
  for (auto& p : placement) p = static_cast<int>(rng.uniform(cluster.num_workers));

  const auto apply_faults = [&](SessionBuilder& b, int idx, bool& fault_affected) {
    const std::string node = cluster.node_name(placement[static_cast<std::size_t>(idx)]);
    const auto truncate_marking = [&](std::uint64_t cutoff) {
      const std::size_t before = b.record_count();
      b.truncate_after(cutoff);
      if (b.record_count() < before) fault_affected = true;
    };
    if (fault.kind == ProblemKind::SessionAbort && idx == abort_victim) {
      truncate_marking(job_start + (b.now() - job_start) / 2);
    }
    if (fault.kind == ProblemKind::NodeFailure && node == fault_host) {
      truncate_marking(fault_time);
    }
  };

  // ---- DAGAppMaster session ----------------------------------------------
  {
    SessionBuilder b(corpus, container_id(1), cluster.node_name(placement[0]), job_start,
                     rng.fork());
    bool fault_affected = false;
    const std::string query_id = "query_" + std::to_string(1 + spec.seed % 22);
    b.emit("am.created", {app_id});
    b.emit("am.session.open", {"session_" + std::to_string(spec.seed % 1000)});
    b.emit("am.query.parse", {spec.seed % 3 == 0 ? "SELECT" : (spec.seed % 3 == 1 ? "INSERT" : "ANALYZE")});
    b.emit("am.query.semantic", {std::to_string(50 + b.rng().uniform(900))});
    b.emit("am.query.compile", {query_id});
    b.emit("am.query.jobs", {"1", "1"});
    b.emit("am.query.exec", {});
    b.emit("am.submit", {app_id});
    b.emit("am.dag.running", {dag_id});
    b.emit("am.dag.running2", {spec.name});
    if (b.rng().chance(0.2)) b.emit("op.plan.cache", {query_id});
    for (int ci2 = 0; ci2 < num_containers; ++ci2) {
      b.emit("am.container.launch", {container_id(2 + ci2)});
      if (b.rng().chance(0.3)) b.emit("am.container.reuse", {container_id(2 + ci2)});
    }
    for (int v = 0; v < num_vertices; ++v) {
      b.emit("am.vertex.create", {vertex_id(v), "Map-" + std::to_string(v + 1)});
      b.emit("am.vertex.init", {vertex_id(v), "NEW", "INITED"});
      if (b.rng().chance(0.4)) b.emit("am.taskcomm", {vertex_id(v)});
      b.emit("am.vertex.schedule",
             {std::to_string(1 + num_containers / num_vertices), vertex_id(v)});
      b.emit("am.vertex.init", {vertex_id(v), "INITED", "RUNNING"});
      b.emit("am.vertex.tasks",
             {std::to_string(num_containers), "0", "0"});
      if (b.rng().chance(0.6)) {
        b.emit("am.route", {"DATA_MOVEMENT_EVENT", vertex_id(v)});
      }
    }
    b.advance(2000, static_cast<std::uint64_t>(approx_span));
    for (int v = 0; v < num_vertices; ++v) {
      b.emit("am.vertex.init", {vertex_id(v), "RUNNING", "SUCCEEDED"});
    }
    b.emit("am.dag.finished", {dag_id, "SUCCEEDED"});
    b.emit("am.query.done", {query_id, std::to_string(5 + b.rng().uniform(300))});
    apply_faults(b, 0, fault_affected);
    if (fault_affected) result.affected_containers.insert(b.container_id());
    result.sessions.push_back(b.finish());
  }

  // ---- task containers ---------------------------------------------------
  for (int ci = 0; ci < num_containers; ++ci) {
    const int idx = 1 + ci;
    SessionBuilder b(corpus, container_id(2 + ci),
                     cluster.node_name(placement[static_cast<std::size_t>(idx)]),
                     job_start + 2500 + rng.uniform(6000), rng.fork());
    const std::string node = b.node();
    bool fault_affected = false;
    bool perf_affected = false;
    b.emit("task.localize", {b.container_id()});
    const int tasks_here = 4 + static_cast<int>(b.rng().uniform(3 + spec.input_gb / 2));
    // Two task slots run concurrently (tez.am.container.reuse with
    // parallelism), so task logs interleave.
    std::vector<SessionBuilder> slots;
    slots.push_back(b.fork(5));
    slots.push_back(b.fork(19));
    for (int t = 0; t < tasks_here; ++t) {
      SessionBuilder& b2 = slots[static_cast<std::size_t>(t % 2)];
      const int task_no = ci * 6 + t;
      const int vertex = task_no % num_vertices;
      b2.emit("task.init", {attempt_id(task_no)});
      b2.emit("task.start", {attempt_id(task_no), b2.container_id()});
      b2.emit("task.input.open", {"MRInput-0", vertex_id(vertex)});
      b2.emit("op.init", {"TS_" + std::to_string(vertex)});
      b2.emit("op.self.init", {std::to_string(vertex * 10)});
      b2.emit("op.init.done", {std::to_string(vertex * 10)});
      if (vertex == 0) b2.emit("op.map.begin", {vertex_id(vertex)});
      if (vertex > 0) {
        b2.emit("task.shuffle.assign", {std::to_string(1 + b2.rng().uniform(24))});
        b2.emit("shuffle.threads", {std::to_string(2 + b2.rng().uniform(8))});
        if (b2.rng().chance(0.4)) {
          b2.emit("shuffle.input.ready", {"MRInput-0", vertex_id(vertex)});
        }
        const int upstream = static_cast<int>(b2.rng().uniform(num_containers));
        const std::string source_host =
            cluster.node_name(placement[static_cast<std::size_t>(1 + upstream)]);
        const bool fault_hit = (fault.kind == ProblemKind::NetworkFailure ||
                                fault.kind == ProblemKind::NodeFailure) &&
                               b2.now() >= fault_time && source_host == fault_host;
        if (fault_hit) {
          for (int att = 0; att < 2; ++att) {
            b2.emit("task.fetch.fail", {source_host + ":13563", attempt_id(task_no)},
                   /*injected=*/true);
            b2.emit("task.fetch.retry", {source_host + ":13563", "5000"}, /*injected=*/true);
          }
          fault_affected = true;
        } else {
          b2.emit("shuffle.fetcher.go",
                 {std::to_string(1 + b2.rng().uniform(8)), source_host + ":13563"});
          b2.emit("task.copy", {attempt_id(task_no), source_host + ":13563"});
          b2.emit("task.merge.files", {std::to_string(2 + b2.rng().uniform(14)),
                                      std::to_string(10000 + b2.rng().uniform(4000000))});
        }
      }
      b2.emit("op.rows.process", {std::to_string(10000 + b2.rng().uniform(900000)),
                                 std::to_string(50 + b2.rng().uniform(2000))});
      if (b2.rng().chance(0.5)) {
        b2.emit("op.filter", {std::to_string(vertex * 10 + 1),
                              std::to_string(1000 + b2.rng().uniform(90000))});
      }
      if (vertex > 0 && b2.rng().chance(0.4)) {
        b2.emit("op.hashtable", {"/hadoop/yarn/local/hashtable_" +
                                 std::to_string(task_no) + ".ht"});
        b2.emit("op.join", {std::to_string(vertex * 10 + 2),
                            std::to_string(500 + b2.rng().uniform(50000))});
      }
      if (b2.rng().chance(0.4)) {
        b2.emit("op.groupby", {std::to_string(vertex * 10 + 3),
                               std::to_string(100 + b2.rng().uniform(5000))});
      }
      if (vertex + 1 < num_vertices) {
        b2.emit("op.reduce.sink", {std::to_string(vertex * 10 + 4),
                                   std::to_string(100 + b2.rng().uniform(20000))});
      } else if (b2.rng().chance(0.6)) {
        b2.emit("op.file.sink",
                {"hdfs://master:9000/tmp/hive/sink_" + std::to_string(task_no)});
      }
      if (b2.rng().chance(0.15)) {
        b2.emit("op.limit", {std::to_string(vertex * 10 + 5),
                             std::to_string(100 * (1 + b2.rng().uniform(10)))});
      }
      if (b2.rng().chance(0.6)) {
        b2.emit("op.rows.forward", {std::to_string(vertex),
                                   std::to_string(1000 + b2.rng().uniform(90000))});
      }
      if (b2.rng().chance(0.4)) {
        b2.emit("op.rows.flush", {std::to_string(100 + b2.rng().uniform(9000))});
      }
      if (b2.rng().chance(0.5)) {
        b2.emit("task.status", {std::to_string(b2.rng().uniform(100)),
                               std::to_string(b2.rng().uniform(2000000))});
      }
      if (spill_mode && b2.rng().chance(0.6)) {
        const std::string spill_path =
            "/hadoop/yarn/local/usercache/appcache/" + app_id + "/spill_" +
            std::to_string(task_no) + ".out";
        b2.emit("task.spill.records", {std::to_string(50000 + b2.rng().uniform(500000))});
        b2.emit("task.spill.write", {spill_path});
        perf_affected = true;
      }
      if (vertex > 0) b2.emit("task.merge.final", {std::to_string(1 + b2.rng().uniform(8))});
      b2.emit("task.output.commit",
             {vertex_id(vertex), "hdfs://master:9000/tmp/hive/out_" + std::to_string(task_no)});
      if (b2.rng().chance(0.5)) b2.emit("task.commit2", {attempt_id(task_no)});
      b2.emit("task.output.close", {"MROutput-0", vertex_id(vertex)});
      b2.emit("op.finished.closing", {std::to_string(vertex)});
      b2.emit("op.close.done", {std::to_string(vertex)});
      if (b2.rng().chance(0.5)) {
        b2.emit("task.counters", {std::to_string(b2.rng().uniform(100000000)),
                                 std::to_string(b2.rng().uniform(100000000)),
                                 std::to_string(b2.rng().uniform(100000))});
      }
      if (spec.container_memory_mb > spec.required_memory_mb() * 6 && b2.rng().chance(0.008)) {
        b2.emit("task.wait.interrupt", {});
      }
      b2.emit("task.complete", {attempt_id(task_no)});
      b2.advance(200, 2500);
    }
    for (auto& slot : slots) b.absorb(std::move(slot));
    b.emit("task.container.stop", {});
    apply_faults(b, idx, fault_affected);
    if (fault_affected) result.affected_containers.insert(b.container_id());
    if (perf_affected) result.perf_affected_containers.insert(b.container_id());
    result.sessions.push_back(b.finish());
  }

  return result;
}

}  // namespace intellog::simsys
