#include "simsys/corruptor.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "logparse/formatter.hpp"

namespace intellog::simsys {

namespace fs = std::filesystem;

CorruptionSpec CorruptionSpec::all(double intensity) {
  CorruptionSpec spec;
  spec.torn_p = intensity;
  spec.duplicate_p = intensity;
  spec.reorder_p = intensity;
  spec.garbage_p = intensity;
  spec.rotation_p = 0.5;  // about half the streams rotate mid-run
  spec.drop_p = intensity;
  spec.skew_p = intensity;
  return spec;
}

common::Json CorruptionStats::to_json() const {
  common::Json j = common::Json::object();
  j["input_lines"] = input_lines;
  j["emitted_lines"] = emitted_lines;
  j["torn"] = torn;
  j["duplicated"] = duplicated;
  j["reordered"] = reordered;
  j["garbage"] = garbage;
  j["rotations"] = rotations;
  j["dropped"] = dropped;
  j["skewed"] = skewed;
  return j;
}

LogStreamCorruptor::LogStreamCorruptor(CorruptionSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

void LogStreamCorruptor::push_garbage(Result& out) {
  const std::size_t n = 1 + rng_.uniform(std::max<std::size_t>(spec_.garbage_max_bytes, 1));
  std::string junk(n, '\0');
  for (auto& c : junk) {
    // Full byte range except '\n' (this is one stream line): NULs, invalid
    // UTF-8 continuation bytes, control characters — everything a failing
    // disk or a binary write splices into a text log.
    unsigned char b = static_cast<unsigned char>(rng_.uniform(256));
    if (b == '\n') b = 0;
    c = static_cast<char>(b);
  }
  out.lines.push_back(std::move(junk));
  out.origin.push_back(-1);
  ++stats_.garbage;
}

std::string LogStreamCorruptor::skew_line(const std::string& line, bool& changed) {
  changed = false;
  const logparse::Formatter* fmt = logparse::detect_format(line);
  if (!fmt) return line;
  auto rec = fmt->parse(line);
  if (!rec) return line;
  const std::int64_t delta = rng_.uniform_int(-spec_.skew_max_ms, spec_.skew_max_ms);
  const std::int64_t shifted = static_cast<std::int64_t>(rec->timestamp_ms) + delta;
  rec->timestamp_ms = shifted < 0 ? 0 : static_cast<std::uint64_t>(shifted);
  std::string rendered = fmt->render(*rec);
  changed = rendered != line;
  return rendered;
}

LogStreamCorruptor::Result LogStreamCorruptor::corrupt(const std::vector<std::string>& lines) {
  stats_.input_lines += lines.size();

  struct Pending {
    const std::string* line;
    std::size_t index;
  };

  // Pass 1: drop bursts.
  std::vector<Pending> work;
  work.reserve(lines.size());
  Result out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (spec_.drop_p > 0 && rng_.chance(spec_.drop_p)) {
      const std::size_t burst =
          1 + rng_.uniform(std::max<std::size_t>(spec_.drop_burst_max, 1));
      for (std::size_t k = 0; k < burst && i < lines.size(); ++k, ++i) {
        out.dropped.push_back(i);
        ++stats_.dropped;
      }
      if (i >= lines.size()) break;
    }
    work.push_back({&lines[i], i});
  }

  // Pass 2: bounded reorder — delay a line by 1..reorder_window positions.
  if (spec_.reorder_p > 0 && spec_.reorder_window > 0) {
    for (std::size_t i = 0; i + 1 < work.size(); ++i) {
      if (!rng_.chance(spec_.reorder_p)) continue;
      const std::size_t delay = 1 + rng_.uniform(spec_.reorder_window);
      const std::size_t j = std::min(i + delay, work.size() - 1);
      if (j == i) continue;
      std::rotate(work.begin() + static_cast<std::ptrdiff_t>(i),
                  work.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  work.begin() + static_cast<std::ptrdiff_t>(j) + 1);
      ++stats_.reordered;
    }
  }

  // Rotation point: where copytruncate rotation re-reads the tail.
  std::size_t rotation_at = work.size() + 1;
  if (work.size() >= 3 && spec_.rotation_p > 0 && rng_.chance(spec_.rotation_p)) {
    rotation_at = 1 + rng_.uniform(work.size() - 2);
  }

  // Pass 3: emit, applying per-line mutations and injections.
  out.lines.reserve(work.size());
  out.origin.reserve(work.size());
  for (std::size_t w = 0; w < work.size(); ++w) {
    const std::string& line = *work[w].line;
    const std::int64_t orig = static_cast<std::int64_t>(work[w].index);

    if (w == rotation_at) {
      // Copytruncate artifact: the tailer re-emits a torn prefix of the
      // line it was mid-way through, then re-reads the previous line.
      if (line.size() >= 2) {
        out.lines.push_back(line.substr(0, 1 + rng_.uniform(line.size() - 1)));
        out.origin.push_back(-1);
      }
      if (w > 0 && !out.lines.empty()) {
        const std::string& prev = *work[w - 1].line;
        out.lines.push_back(prev);
        out.origin.push_back(static_cast<std::int64_t>(work[w - 1].index));
      }
      ++stats_.rotations;
    }

    if (spec_.torn_p > 0 && line.size() >= 2 && rng_.chance(spec_.torn_p)) {
      out.lines.push_back(line.substr(0, 1 + rng_.uniform(line.size() - 1)));
      out.origin.push_back(-1);
      ++stats_.torn;
    } else if (spec_.skew_p > 0 && rng_.chance(spec_.skew_p)) {
      bool changed = false;
      std::string skewed = skew_line(line, changed);
      out.lines.push_back(std::move(skewed));
      out.origin.push_back(changed ? -1 : orig);
      if (changed) ++stats_.skewed;
    } else {
      out.lines.push_back(line);
      out.origin.push_back(orig);
    }

    if (spec_.duplicate_p > 0 && !out.lines.empty() && rng_.chance(spec_.duplicate_p)) {
      // Re-deliver one of the last few emitted lines verbatim.
      const std::size_t back = rng_.uniform(std::min<std::size_t>(out.lines.size(), 4));
      const std::size_t at = out.lines.size() - 1 - back;
      out.lines.push_back(out.lines[at]);
      out.origin.push_back(out.origin[at]);
      ++stats_.duplicated;
    }

    if (spec_.garbage_p > 0 && rng_.chance(spec_.garbage_p)) push_garbage(out);
  }

  stats_.emitted_lines += out.lines.size();
  return out;
}

std::vector<std::pair<std::string, LogStreamCorruptor::Result>>
LogStreamCorruptor::corrupt_directory(const std::string& src_dir, const std::string& dst_dir) {
  std::vector<std::string> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src_dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".log") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic fault assignment
  fs::create_directories(dst_dir);

  std::vector<std::pair<std::string, Result>> results;
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    Result r = corrupt(lines);
    const std::string stem = fs::path(p).stem().string();
    std::ofstream outf(fs::path(dst_dir) / (stem + ".log"), std::ios::binary);
    for (const auto& l : r.lines) outf << l << "\n";
    results.emplace_back(stem, std::move(r));
  }
  return results;
}

}  // namespace intellog::simsys
