// Result of simulating one job: its sessions plus fault ground truth.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "logparse/session.hpp"
#include "simsys/cluster.hpp"

namespace intellog::simsys {

struct JobResult {
  JobSpec spec;
  FaultPlan fault;
  std::vector<logparse::Session> sessions;
  /// Containers whose logs were actually disturbed by the fault plan
  /// (ground truth for session-level detection metrics). Includes sessions
  /// disturbed by side effects — e.g. spill messages from a memory
  /// misconfiguration — not only by the injected problem itself.
  std::set<std::string> affected_containers;
  /// Containers disturbed by a performance issue or bug rather than by the
  /// injected problem (spill messages, Spark-19371 task starvation) — the
  /// paper's "(P/B)" column in Table 6.
  std::set<std::string> perf_affected_containers;

  bool has_fault() const { return fault.kind != ProblemKind::None; }
  bool has_perf_issue() const { return !perf_affected_containers.empty(); }
};

}  // namespace intellog::simsys
