// Log-statement template corpora for the simulated systems.
//
// Each template models one log printing statement of a real system
// (modelled on Spark 2.1 / Hadoop 2.9 / Tez 0.8 / YARN / nova-compute log
// statements). The template text uses inline placeholders:
//
//   {I:TYPE}  identifier field with identifier type TYPE (e.g. {I:TASK})
//   {V}       numeric value field (metric)
//   {L}       locality field (host, host:port, path, DFS path)
//   {W}       free word field (non-numeric variable, e.g. "memory"/"disk")
//
// and carries ground-truth annotations: which entity phrases a perfect
// extractor should find in the constant text, and which operation
// predicates. These annotations replace the paper's manual comparison
// against the source code's logging statements (§6.2) — the simulator is
// the "source code" here, so the benches can score extraction exactly.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <vector>

#include "logparse/log_record.hpp"

namespace intellog::simsys {

using logparse::FieldCategory;

/// Declared category of one placeholder.
struct FieldSpec {
  FieldCategory category = FieldCategory::Value;
  std::string id_type;  ///< for Identifier fields: "TASK", "CONTAINER", ...
};

/// One log printing statement of a simulated system.
struct LogTemplate {
  int id = -1;
  std::string level = "INFO";
  std::string source;               ///< logging class
  std::vector<std::string> parts;   ///< constant text around placeholders
  std::vector<FieldSpec> fields;    ///< fields.size() + 1 == parts.size()
  bool natural_language = true;
  std::vector<std::string> entities;    ///< lemmatized entity phrases (truth)
  std::vector<std::string> operations;  ///< lemmatized predicates (truth)

  /// Renders the template with concrete field values; returns the message
  /// content and fills the ground-truth record.
  std::string render(const std::vector<std::string>& values,
                     logparse::GroundTruth* truth = nullptr) const;

  /// The template as a Spell-style key string (fields as '*').
  std::string key_string() const;
};

/// A system's template corpus, addressable by symbolic name.
class TemplateCorpus {
 public:
  explicit TemplateCorpus(std::string system_name) : system_(std::move(system_name)) {}

  /// Parses `text` with the placeholder syntax above and registers it.
  /// `name` is the symbolic handle emitters use. Returns the template id.
  int add(std::string_view name, std::string_view level, std::string_view source,
          std::string_view text, std::vector<std::string> entities = {},
          std::vector<std::string> operations = {}, bool natural_language = true);

  const LogTemplate& by_name(std::string_view name) const;
  const LogTemplate& by_id(int id) const { return templates_[static_cast<std::size_t>(id)]; }
  bool has(std::string_view name) const;
  std::size_t size() const { return templates_.size(); }
  const std::string& system() const { return system_; }
  const std::vector<LogTemplate>& all() const { return templates_; }

 private:
  std::string system_;
  std::vector<LogTemplate> templates_;
  std::vector<std::string> names_;
};

/// Parses the "{I:TYPE} / {V} / {L} / {W}" placeholder syntax.
void parse_template_text(std::string_view text, std::vector<std::string>& parts,
                         std::vector<FieldSpec>& fields);

}  // namespace intellog::simsys
