#include "simsys/template_corpus.hpp"

#include <stdexcept>

namespace intellog::simsys {

void parse_template_text(std::string_view text, std::vector<std::string>& parts,
                         std::vector<FieldSpec>& fields) {
  parts.clear();
  fields.clear();
  std::string cur;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '{' && i + 2 < text.size()) {
      const std::size_t close = text.find('}', i);
      if (close != std::string_view::npos) {
        const std::string_view body = text.substr(i + 1, close - i - 1);
        FieldSpec spec;
        bool recognized = true;
        if (body == "V") {
          spec.category = FieldCategory::Value;
        } else if (body == "L") {
          spec.category = FieldCategory::Locality;
        } else if (body == "W") {
          spec.category = FieldCategory::Other;
        } else if (body.size() > 2 && body.substr(0, 2) == "I:") {
          spec.category = FieldCategory::Identifier;
          spec.id_type = std::string(body.substr(2));
        } else {
          recognized = false;
        }
        if (recognized) {
          parts.push_back(cur);
          cur.clear();
          fields.push_back(std::move(spec));
          i = close + 1;
          continue;
        }
      }
    }
    cur += text[i];
    ++i;
  }
  parts.push_back(cur);
}

std::string LogTemplate::render(const std::vector<std::string>& values,
                                logparse::GroundTruth* truth) const {
  assert(values.size() == fields.size());
  std::string out = parts[0];
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out += values[i];
    out += parts[i + 1];
  }
  if (truth) {
    truth->template_id = id;
    truth->natural_language = natural_language;
    truth->entities = entities;
    truth->operations = operations;
    truth->fields.clear();
    for (std::size_t i = 0; i < fields.size(); ++i) {
      truth->fields.push_back({values[i], fields[i].category, fields[i].id_type});
    }
  }
  return out;
}

std::string LogTemplate::key_string() const {
  std::string out = parts[0];
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out += "*";
    out += parts[i + 1];
  }
  return out;
}

int TemplateCorpus::add(std::string_view name, std::string_view level, std::string_view source,
                        std::string_view text, std::vector<std::string> entities,
                        std::vector<std::string> operations, bool natural_language) {
  LogTemplate t;
  t.id = static_cast<int>(templates_.size());
  t.level = std::string(level);
  t.source = std::string(source);
  parse_template_text(text, t.parts, t.fields);
  t.natural_language = natural_language;
  t.entities = std::move(entities);
  t.operations = std::move(operations);
  templates_.push_back(std::move(t));
  names_.emplace_back(name);
  return templates_.back().id;
}

const LogTemplate& TemplateCorpus::by_name(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return templates_[i];
  }
  throw std::out_of_range("TemplateCorpus(" + system_ + "): no template named '" +
                          std::string(name) + "'");
}

bool TemplateCorpus::has(std::string_view name) const {
  for (const auto& n : names_) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace intellog::simsys
