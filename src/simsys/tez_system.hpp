// Simulated Tez running Hive/TPC-H-style queries (modelled on Tez 0.8 +
// Hive 1.2 log statements).
//
// Sessions: one DAGAppMaster container per query plus task containers.
// Tez logs are short and well-formatted (the paper credits this for Tez's
// higher extraction accuracy) but include the two famously vague operator
// keys ("{op} Close done", "{op} finished. Closing") and a handful of pure
// key-value status lines (Table 1's ~92% NL share).
#pragma once

#include "simsys/cluster.hpp"
#include "simsys/job_result.hpp"
#include "simsys/template_corpus.hpp"

namespace intellog::simsys {

const TemplateCorpus& tez_corpus();

class TezJobSim {
 public:
  JobResult run(const JobSpec& spec, const ClusterSpec& cluster, const FaultPlan& fault) const;
};

}  // namespace intellog::simsys
