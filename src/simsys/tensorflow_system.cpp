#include "simsys/tensorflow_system.hpp"

#include <algorithm>

#include "simsys/event_sim.hpp"

namespace intellog::simsys {

namespace {

TemplateCorpus build_tensorflow_corpus() {
  TemplateCorpus c("tensorflow");
  // --- process / cluster bring-up -------------------------------------------
  c.add("server.start", "INFO", "tensorflow.core.distributed_runtime.GrpcServer",
        "Started server with target {L}", {"server"}, {"start"});
  c.add("device.create", "INFO", "tensorflow.core.common_runtime.GpuDevice",
        "Creating TensorFlow device {L} with {V} MB memory", {"tensor flow device"},
        {"create"});
  c.add("channel.init", "INFO", "tensorflow.core.distributed_runtime.GrpcChannel",
        "Initializing channel cache for job {W} at {L}", {"channel cache", "job"},
        {"initialize"});
  // Clause-less prose: stays an Intel Key, yields no operation (§5/§6.2).
  c.add("session.init", "INFO", "tensorflow.core.distributed_runtime.MasterSession",
        "Session initialization complete for worker {I:WORKER}",
        {"session initialization", "worker"}, {});
  c.add("var.init", "INFO", "tensorflow.python.training.SessionManager",
        "Running local init op for variables", {"local init op", "variable"}, {"run"});
  c.add("queue.start", "INFO", "tensorflow.python.training.Coordinator",
        "Starting queue runners for input pipeline", {"queue runner", "input pipeline"},
        {"start"});
  c.add("ps.wait", "INFO", "tensorflow.python.training.SessionManager",
        "Waiting for model to be initialized by chief worker", {"model", "chief worker"},
        {"wait", "initialize"});

  // --- training loop -----------------------------------------------------------
  c.add("step.report", "INFO", "tensorflow.python.training.MonitoredSession",
        "Global step {I:STEP} completed with loss {V}", {"global step", "loss"}, {"complete"});
  c.add("examples.rate", "INFO", "tensorflow.python.training.MonitoredSession",
        "Processed {V} examples in {V} seconds", {"example"}, {"process"});
  c.add("step.kv", "INFO", "tensorflow.python.training.basic_session_run_hooks",
        "step={V} loss={V} lr={V}", {}, {}, /*natural_language=*/false);
  c.add("grad.aggregate", "INFO", "tensorflow.core.distributed_runtime.SyncReplicasOptimizer",
        "Aggregating gradients from {V} workers", {"gradient", "worker"}, {"aggregate"});
  c.add("ckpt.save", "INFO", "tensorflow.python.training.Saver",
        "Saving checkpoint to {L}", {"checkpoint"}, {"save"});
  c.add("ckpt.restore", "INFO", "tensorflow.python.training.Saver",
        "Restoring parameters from {L}", {"parameter"}, {"restore"});
  c.add("summary.write", "INFO", "tensorflow.python.summary.FileWriter",
        "Writing summaries for step {I:STEP} to {L}", {"summary", "step"}, {"write"});

  // --- shutdown ------------------------------------------------------------------
  c.add("coord.stop", "INFO", "tensorflow.python.training.Coordinator",
        "Coordinator stopped all queue runners", {"coordinator", "queue runner"}, {"stop"});
  c.add("session.close", "INFO", "tensorflow.core.distributed_runtime.MasterSession",
        "Closing session and releasing resources", {"session", "resource"},
        {"close", "release"});

  // --- anomaly-phase templates -----------------------------------------------
  c.add("ps.conn.fail", "ERROR", "tensorflow.core.distributed_runtime.GrpcChannel",
        "Failed to connect to parameter server at {L}", {"parameter server"},
        {"fail", "connect"});
  c.add("ps.conn.retry", "WARN", "tensorflow.core.distributed_runtime.GrpcChannel",
        "Retrying RPC to {L} in {V} ms", {"rpc"}, {"retry"});
  c.add("step.stall", "WARN", "tensorflow.python.training.MonitoredSession",
        "Training step {I:STEP} stalled for {V} seconds", {"training step"}, {"stall"});
  c.add("mem.spill", "WARN", "tensorflow.core.common_runtime.BFCAllocator",
        "Allocator ran out of memory, spilling tensors to host memory",
        {"allocator", "memory", "tensor"}, {"run", "spill"});
  return c;
}

}  // namespace

const TemplateCorpus& tensorflow_corpus() {
  static const TemplateCorpus corpus = build_tensorflow_corpus();
  return corpus;
}

JobResult TensorFlowJobSim::run(const JobSpec& spec, const ClusterSpec& cluster,
                                const FaultPlan& fault) const {
  JobResult result;
  result.spec = spec;
  result.fault = fault;

  common::Rng rng(spec.seed ^ 0x7466ULL);
  const TemplateCorpus& corpus = tensorflow_corpus();

  const int num_workers = std::clamp(2 + spec.input_gb / 4, 2, 12);
  const int num_ps = std::clamp(num_workers / 4, 1, 3);
  const int steps = std::max(10, spec.input_gb * 5);
  const bool spill_mode = !spec.memory_sufficient();

  const std::uint64_t job_start = 3600000ULL * (1 + rng.uniform(20));
  const std::uint64_t approx_span = 3000 + static_cast<std::uint64_t>(steps) * 120;
  const std::uint64_t fault_time =
      job_start + static_cast<std::uint64_t>(fault.at_fraction * static_cast<double>(approx_span));
  const std::string fault_host =
      fault.target_node >= 0 ? cluster.node_name(fault.target_node) : "";

  const int total = num_ps + num_workers;
  const int abort_victim =
      fault.kind == ProblemKind::SessionAbort ? static_cast<int>(rng.uniform(total)) : -1;
  // Parameter servers are pinned to the first nodes (a common deployment
  // convention); workers land anywhere.
  std::vector<int> placement(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    placement[static_cast<std::size_t>(i)] =
        i < num_ps ? i : static_cast<int>(rng.uniform(cluster.num_workers));
  }

  const auto container_id = [&](int i) {
    return "container_" + std::to_string(spec.seed % 100000) + "_04_" + std::to_string(i + 1);
  };
  const auto apply_faults = [&](SessionBuilder& b, int idx, bool& fault_affected) {
    const std::string node = cluster.node_name(placement[static_cast<std::size_t>(idx)]);
    const auto truncate_marking = [&](std::uint64_t cutoff) {
      const std::size_t before = b.record_count();
      b.truncate_after(cutoff);
      if (b.record_count() < before) fault_affected = true;
    };
    if (fault.kind == ProblemKind::SessionAbort && idx == abort_victim) {
      truncate_marking(job_start + (b.now() - job_start) / 2);
    }
    if (fault.kind == ProblemKind::NodeFailure && node == fault_host) {
      truncate_marking(fault_time);
    }
  };

  // ---- parameter servers ------------------------------------------------------
  for (int p = 0; p < num_ps; ++p) {
    const std::string node = cluster.node_name(placement[static_cast<std::size_t>(p)]);
    SessionBuilder b(corpus, container_id(p), node, job_start + rng.uniform(1500), rng.fork());
    bool fault_affected = false;
    b.emit("server.start", {"grpc://" + node + ":2222"});
    b.emit("device.create", {"/device:CPU:0", std::to_string(spec.container_memory_mb)});
    b.emit("channel.init", {"worker", "grpc://" + cluster.master_name() + ":2223"});
    b.emit("ps.wait", {});
    const int rounds = steps / 5;
    for (int s = 0; s < rounds; ++s) {
      b.emit("grad.aggregate", {std::to_string(num_workers)});
      b.advance(300, 900);
    }
    b.emit("session.close", {});
    apply_faults(b, p, fault_affected);
    if (fault_affected) result.affected_containers.insert(b.container_id());
    result.sessions.push_back(b.finish());
  }

  // ---- workers (worker 0 = chief) -----------------------------------------------
  for (int w = 0; w < num_workers; ++w) {
    const int idx = num_ps + w;
    const std::string node = cluster.node_name(placement[static_cast<std::size_t>(idx)]);
    SessionBuilder b(corpus, container_id(idx), node, job_start + 500 + rng.uniform(2500),
                     rng.fork());
    bool fault_affected = false, perf_affected = false;
    b.emit("server.start", {"grpc://" + node + ":2223"});
    b.emit("device.create", {"/device:CPU:0", std::to_string(spec.container_memory_mb)});
    for (int p = 0; p < num_ps; ++p) {
      b.emit("channel.init",
             {"ps", "grpc://" + cluster.node_name(placement[static_cast<std::size_t>(p)]) +
                        ":2222"});
    }
    if (w == 0) {
      b.emit("var.init", {});
      if (b.rng().chance(0.4)) b.emit("ckpt.restore", {"/train/model.ckpt-0"});
    } else {
      b.emit("ps.wait", {});
    }
    b.emit("session.init", {std::to_string(w)});
    b.emit("queue.start", {});

    const int my_steps = steps / num_workers + static_cast<int>(b.rng().uniform(6));
    for (int s = 0; s < my_steps; ++s) {
      const int step_no = s * num_workers + w;
      const std::string ps_node =
          cluster.node_name(placement[static_cast<std::size_t>(b.rng().uniform(num_ps))]);
      const bool fault_hit = (fault.kind == ProblemKind::NetworkFailure ||
                              fault.kind == ProblemKind::NodeFailure) &&
                             b.now() >= fault_time && ps_node == fault_host &&
                             node != fault_host;
      if (fault_hit) {
        for (int att = 0; att < 2; ++att) {
          b.emit("ps.conn.fail", {ps_node + ":2222"}, /*injected=*/true);
          b.emit("ps.conn.retry", {ps_node + ":2222", std::to_string(1000 * (att + 1))},
                 /*injected=*/true);
        }
        b.emit("step.stall", {std::to_string(step_no), std::to_string(30)}, /*injected=*/true);
        fault_affected = true;
      } else {
        b.emit("step.report",
               {std::to_string(step_no), std::to_string(1 + b.rng().uniform(4)) + "." +
                                             std::to_string(10 + b.rng().uniform(89))});
        if (b.rng().chance(0.6)) {
          b.emit("examples.rate", {std::to_string(500 + b.rng().uniform(2000)),
                                   std::to_string(1 + b.rng().uniform(5))});
        }
        if (b.rng().chance(0.4)) {
          b.emit("step.kv", {std::to_string(step_no), std::to_string(b.rng().uniform(300)),
                             std::to_string(b.rng().uniform(100))});
        }
        if (spill_mode && b.rng().chance(0.4)) {
          b.emit("mem.spill", {});
          perf_affected = true;
        }
        if (w == 0 && s > 0 && s % 8 == 0) {
          b.emit("ckpt.save", {"/train/model.ckpt-" + std::to_string(step_no)});
          b.emit("summary.write",
                 {std::to_string(step_no), "/train/events.out." + node});
        }
      }
      b.advance(60, 260);
    }
    b.emit("coord.stop", {});
    b.emit("session.close", {});
    apply_faults(b, idx, fault_affected);
    if (fault.kind == ProblemKind::NetworkFailure && node == fault_host) {
      const std::size_t before = b.record_count();
      b.truncate_after(fault_time + 2000);
      if (b.record_count() < before) fault_affected = true;
    }
    if (fault_affected) result.affected_containers.insert(b.container_id());
    if (perf_affected) result.perf_affected_containers.insert(b.container_id());
    result.sessions.push_back(b.finish());
  }
  return result;
}

}  // namespace intellog::simsys
