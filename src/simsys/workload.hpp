// Workload generator and problem injector (§6.1, §6.4).
//
// Mirrors the paper's generator: HiBench-style jobs for Spark and
// MapReduce (text processing, machine learning, graph processing), TPC-H
// style queries through Hive for Tez. Training jobs use carefully tuned
// resource configurations so every job runs clean; detection jobs draw
// from five configuration sets with different input sizes and resource
// allocations, and the injector triggers one of the three §6.4 problems at
// a random point of the execution.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "simsys/cluster.hpp"
#include "simsys/job_result.hpp"

namespace intellog::simsys {

/// Runs one job on the simulated cluster with the given fault plan,
/// dispatching to the right system simulator.
JobResult run_job(const JobSpec& spec, const ClusterSpec& cluster,
                  const FaultPlan& fault = {});

/// Job names available per system (HiBench mix / TPC-H queries).
const std::vector<std::string>& job_names(const std::string& system);

class WorkloadGenerator {
 public:
  WorkloadGenerator(std::string system, std::uint64_t seed);

  /// A training job: random name/input size, resources tuned so the run is
  /// clean (sufficient memory, no rare shutdown paths).
  JobSpec training_job();

  /// A detection-phase job from configuration set `config_set` (0..4):
  /// different input sizes and resource allocations than training, still
  /// guaranteed to succeed (§6.4).
  JobSpec detection_job(int config_set);

  /// A random fault plan of the given kind (victim node, trigger point).
  FaultPlan make_fault(ProblemKind kind, const ClusterSpec& cluster);

 private:
  std::string system_;
  common::Rng rng_;
  int counter_ = 0;
};

}  // namespace intellog::simsys
