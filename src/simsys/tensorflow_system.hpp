// Simulated distributed TensorFlow — the paper's stated future work
// ("we plan to extend IntelLog to distributed machine learning systems
// (e.g., TensorFlow)", §9) implemented as a fourth targeted system.
//
// Topology: parameter-server sessions plus worker sessions (worker 0 is
// the chief: it checkpoints). Workers run a training-step loop whose
// logging mixes natural-language lines with periodic key-value step
// summaries; gradient aggregation on the PS interleaves with worker
// traffic. Faults map naturally: a network/node failure severs workers
// from a parameter server (connection-error lines), memory pressure spills
// tensors to host memory.
#pragma once

#include "simsys/cluster.hpp"
#include "simsys/job_result.hpp"
#include "simsys/template_corpus.hpp"

namespace intellog::simsys {

const TemplateCorpus& tensorflow_corpus();

class TensorFlowJobSim {
 public:
  JobResult run(const JobSpec& spec, const ClusterSpec& cluster, const FaultPlan& fault) const;
};

}  // namespace intellog::simsys
