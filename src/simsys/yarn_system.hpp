// Simulated YARN ResourceManager / NodeManager daemons and OpenStack
// nova-compute — used by the Table-1 natural-language-ratio measurement.
//
// YARN logs mix NL container-lifecycle lines with periodic key-value
// resource reports (~2% of lines). nova-compute logs VM-request lifecycles
// (100% NL) plus the fixed-format periodic resource view that the paper's
// footnote excludes; the emitter tags those with the "resource_tracker"
// source so the bench can apply the same exclusion.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "logparse/session.hpp"
#include "simsys/cluster.hpp"
#include "simsys/template_corpus.hpp"

namespace intellog::simsys {

const TemplateCorpus& yarn_corpus();
const TemplateCorpus& nova_corpus();

/// Generates `num_apps` application lifecycles worth of RM/NM log records.
std::vector<logparse::LogRecord> generate_yarn_logs(const ClusterSpec& cluster, int num_apps,
                                                    common::Rng& rng);

/// The same lifecycles as per-application sessions (the infrastructure-level
/// request unit the paper contrasts with data-analytics sessions: short,
/// near-fixed order — the regime where next-key prediction works).
std::vector<logparse::Session> generate_yarn_sessions(const ClusterSpec& cluster, int num_apps,
                                                      common::Rng& rng);

/// Generates `num_requests` VM-request lifecycles, interleaved with
/// periodic resource reports (source "compute.resource_tracker").
std::vector<logparse::LogRecord> generate_nova_logs(int num_requests, common::Rng& rng);

}  // namespace intellog::simsys
