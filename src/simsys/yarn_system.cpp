#include "simsys/yarn_system.hpp"

#include "simsys/event_sim.hpp"

namespace intellog::simsys {

namespace {

TemplateCorpus build_yarn_corpus() {
  TemplateCorpus c("yarn");
  c.add("app.submitted", "INFO", "resourcemanager.ClientRMService",
        "Application {I:APP} submitted by user {W}", {"application", "user"}, {"submit"});
  c.add("app.accepted", "INFO", "resourcemanager.rmapp.RMAppImpl",
        "Application {I:APP} transitioned from SUBMITTED to ACCEPTED", {"application"},
        {"transition"});
  c.add("app.attempt", "INFO", "resourcemanager.rmapp.attempt.RMAppAttemptImpl",
        "Registering app attempt {I:ATTEMPT}", {"app attempt"}, {"register"});
  c.add("container.allocated", "INFO", "resourcemanager.scheduler.SchedulerNode",
        "Assigned container {I:CONTAINER} of capacity {W} on host {L}",
        {"container", "capacity", "host"}, {"assign"});
  c.add("container.transition", "INFO", "nodemanager.containermanager.container.ContainerImpl",
        "Container {I:CONTAINER} transitioned from {W} to {W}", {"container"}, {"transition"});
  c.add("container.launch", "INFO", "nodemanager.containermanager.launcher.ContainerLaunch",
        "Launching container {I:CONTAINER} on node {L}", {"container", "node"}, {"launch"});
  c.add("localizer.start", "INFO",
        "nodemanager.containermanager.localizer.ResourceLocalizationService",
        "Localizing resource {L} for container {I:CONTAINER}", {"resource", "container"},
        {"localize"});
  c.add("container.cleanup", "INFO", "nodemanager.DefaultContainerExecutor",
        "Deleting absolute path {L}", {"absolute path"}, {"delete"});
  c.add("container.released", "INFO", "resourcemanager.scheduler.AbstractYarnScheduler",
        "Released container {I:CONTAINER} with state COMPLETE", {"container"}, {"release"});
  c.add("app.finished", "INFO", "resourcemanager.rmapp.RMAppImpl",
        "Application {I:APP} transitioned from RUNNING to FINISHED", {"application"},
        {"transition"});
  c.add("node.heartbeat", "INFO", "resourcemanager.ResourceTrackerService",
        "Node {L} reported healthy status", {"node", "status"}, {"report"});
  // Periodic key-value resource report (~2% of lines, drives the 97.6%).
  c.add("node.resources", "INFO", "resourcemanager.scheduler.SchedulerNode",
        "availableResources memory={V} vCores={V} usedResources memory={V} vCores={V}", {}, {},
        /*natural_language=*/false);
  return c;
}

TemplateCorpus build_nova_corpus() {
  TemplateCorpus c("nova");
  c.add("vm.start", "INFO", "compute.manager",
        "Starting instance {I:INSTANCE}", {"instance"}, {"start"});
  c.add("vm.claim", "INFO", "compute.claims",
        "Attempting claim on node {L}: memory {V} MB, disk {V} GB, vcpus {V}",
        {"claim", "node", "memory", "disk", "vcpus"}, {"attempt"});
  c.add("vm.claim.ok", "INFO", "compute.claims",
        "Claim successful on node {L}", {"claim", "node"}, {"succeed"});
  c.add("vm.image", "INFO", "compute.manager",
        "Creating image for instance {I:INSTANCE}", {"image", "instance"}, {"create"});
  c.add("vm.network", "INFO", "compute.manager",
        "Allocating network for instance {I:INSTANCE}", {"network", "instance"}, {"allocate"});
  c.add("vm.spawned", "INFO", "compute.manager",
        "Took {V} seconds to spawn the instance on the hypervisor", {"instance", "hypervisor"},
        {"take", "spawn"});
  c.add("vm.lifecycle", "INFO", "compute.manager",
        "VM started for instance {I:INSTANCE}", {"vm", "instance"}, {"start"});
  c.add("vm.terminate", "INFO", "compute.manager",
        "Terminating instance {I:INSTANCE}", {"instance"}, {"terminate"});
  c.add("vm.files.delete", "INFO", "compute.manager",
        "Deleting instance files {L}", {"instance file"}, {"delete"});
  c.add("vm.destroyed", "INFO", "compute.manager",
        "Instance destroyed successfully", {"instance"}, {"destroy"});
  c.add("vm.volume", "INFO", "compute.manager",
        "Attaching volume {I:VOLUME} to instance {I:INSTANCE}", {"volume", "instance"},
        {"attach"});
  // The fixed-format periodic report the paper's footnote excludes.
  c.add("resource.view", "INFO", "compute.resource_tracker",
        "Final resource view: phys_ram={V}MB used_ram={V}MB phys_disk={V}GB used_disk={V}GB",
        {}, {}, /*natural_language=*/false);
  return c;
}

}  // namespace

const TemplateCorpus& yarn_corpus() {
  static const TemplateCorpus corpus = build_yarn_corpus();
  return corpus;
}

const TemplateCorpus& nova_corpus() {
  static const TemplateCorpus corpus = build_nova_corpus();
  return corpus;
}

std::vector<logparse::Session> generate_yarn_sessions(const ClusterSpec& cluster, int num_apps,
                                                      common::Rng& rng) {
  const TemplateCorpus& corpus = yarn_corpus();
  std::vector<logparse::Session> sessions;
  std::uint64_t clock = 0;
  for (int a = 0; a < num_apps; ++a) {
    const std::string app = "application_1550200000_" + std::to_string(a + 1);
    SessionBuilder b(corpus, app, cluster.master_name(), clock, rng.fork());
    b.emit("app.submitted", {app, "hadoop"});
    b.emit("app.accepted", {app});
    b.emit("app.attempt", {"appattempt_1550200000_" + std::to_string(a + 1) + "_000001"});
    const int containers = 2 + static_cast<int>(b.rng().uniform(8));
    for (int k = 0; k < containers; ++k) {
      const std::string cont =
          "container_1550200000_" + std::to_string(a + 1) + "_01_" + std::to_string(k + 1);
      const std::string node =
          cluster.node_name(static_cast<int>(b.rng().uniform(cluster.num_workers)));
      b.emit("container.allocated", {cont, "<memory:4096, vCores:8>", node + ":8041"});
      b.emit("container.launch", {cont, node + ":8041"});
      b.emit("container.transition", {cont, "LOCALIZING", "RUNNING"});
      b.emit("localizer.start", {"hdfs://master:9000/user/libs/app.jar", cont});
      if (b.rng().chance(0.25)) {
        b.emit("node.resources", {std::to_string(b.rng().uniform(131072)),
                                  std::to_string(b.rng().uniform(32)),
                                  std::to_string(b.rng().uniform(131072)),
                                  std::to_string(b.rng().uniform(32))});
      }
      b.emit("container.transition", {cont, "RUNNING", "EXITED_WITH_SUCCESS"});
      b.emit("container.cleanup", {"/hadoop/yarn/local/usercache/hadoop/appcache/" + app});
      b.emit("container.released", {cont});
    }
    if (b.rng().chance(0.5)) {
      b.emit("node.heartbeat",
             {cluster.node_name(static_cast<int>(b.rng().uniform(cluster.num_workers))) +
              ":8041"});
    }
    b.emit("app.finished", {app});
    clock = b.now() + 500;
    sessions.push_back(b.finish());
  }
  return sessions;
}

std::vector<logparse::LogRecord> generate_yarn_logs(const ClusterSpec& cluster, int num_apps,
                                                    common::Rng& rng) {
  std::vector<logparse::LogRecord> out;
  for (auto& session : generate_yarn_sessions(cluster, num_apps, rng)) {
    out.insert(out.end(), std::make_move_iterator(session.records.begin()),
               std::make_move_iterator(session.records.end()));
  }
  return out;
}

std::vector<logparse::LogRecord> generate_nova_logs(int num_requests, common::Rng& rng) {
  const TemplateCorpus& corpus = nova_corpus();
  SessionBuilder b(corpus, "nova_compute", "compute1", 0, rng.fork());
  for (int r = 0; r < num_requests; ++r) {
    const std::string inst = "instance-" + std::to_string(100000 + r);
    b.emit("vm.start", {inst});
    b.emit("vm.claim", {"compute1", std::to_string(2048 + b.rng().uniform(14336)),
                        std::to_string(20 + b.rng().uniform(80)),
                        std::to_string(1 + b.rng().uniform(8))});
    b.emit("vm.claim.ok", {"compute1"});
    b.emit("vm.image", {inst});
    b.emit("vm.network", {inst});
    if (b.rng().chance(0.3)) b.emit("vm.volume", {"volume-" + std::to_string(r), inst});
    b.emit("vm.spawned", {std::to_string(5 + b.rng().uniform(55))});
    b.emit("vm.lifecycle", {inst});
    // Periodic resource view, independent of requests.
    if (b.rng().chance(0.8)) {
      b.emit("resource.view",
             {std::to_string(131072), std::to_string(b.rng().uniform(131072)),
              std::to_string(4000), std::to_string(b.rng().uniform(4000))});
    }
    if (b.rng().chance(0.5)) {
      b.emit("vm.terminate", {inst});
      b.emit("vm.files.delete", {"/var/lib/nova/instances/" + inst});
      b.emit("vm.destroyed", {});
    }
  }
  return b.finish().records;
}

}  // namespace intellog::simsys
