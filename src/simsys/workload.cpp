#include "simsys/workload.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "simsys/mapreduce_system.hpp"
#include "simsys/spark_system.hpp"
#include "simsys/tensorflow_system.hpp"
#include "simsys/tez_system.hpp"

namespace intellog::simsys {

std::string to_string(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::None: return "none";
    case ProblemKind::SessionAbort: return "session-abort";
    case ProblemKind::NetworkFailure: return "network-failure";
    case ProblemKind::NodeFailure: return "node-failure";
  }
  return "none";
}

JobResult run_job(const JobSpec& spec, const ClusterSpec& cluster, const FaultPlan& fault) {
  obs::Span span("simsys/run_job", "simsys");
  if (spec.system == "spark") return SparkJobSim{}.run(spec, cluster, fault);
  if (spec.system == "mapreduce") return MapReduceJobSim{}.run(spec, cluster, fault);
  if (spec.system == "tez") return TezJobSim{}.run(spec, cluster, fault);
  if (spec.system == "tensorflow") return TensorFlowJobSim{}.run(spec, cluster, fault);
  throw std::invalid_argument("run_job: unknown system '" + spec.system + "'");
}

const std::vector<std::string>& job_names(const std::string& system) {
  static const std::vector<std::string> hibench = {"WordCount", "Sort",     "TeraSort",
                                                   "KMeans",    "PageRank", "Bayes"};
  static const std::vector<std::string> tpch = {
      "TPCH-Q1", "TPCH-Q3", "TPCH-Q5", "TPCH-Q6",  "TPCH-Q8",  "TPCH-Q10",
      "TPCH-Q12", "TPCH-Q14", "TPCH-Q17", "TPCH-Q19", "TPCH-Q21", "TPCH-Q22"};
  static const std::vector<std::string> mlperf = {"ResNet50", "InceptionV3", "LSTM-LM",
                                                  "Transformer"};
  if (system == "tez") return tpch;
  if (system == "tensorflow") return mlperf;
  return hibench;
}

WorkloadGenerator::WorkloadGenerator(std::string system, std::uint64_t seed)
    : system_(std::move(system)), rng_(seed) {}

JobSpec WorkloadGenerator::training_job() {
  const auto& names = job_names(system_);
  JobSpec spec;
  spec.system = system_;
  spec.name = names[rng_.uniform(names.size())];
  static const int kSizes[] = {1, 2, 5, 10, 20, 30};
  spec.input_gb = kSizes[rng_.uniform(6)];
  spec.container_cores = 4 + static_cast<int>(rng_.uniform(3)) * 2;
  // Tuned: 1.2x - 2x of what the input needs; never spills, never slow.
  spec.container_memory_mb =
      static_cast<int>(spec.required_memory_mb() * rng_.uniform_real(1.2, 2.0));
  spec.seed = rng_.next_u64() | 1;
  ++counter_;
  return spec;
}

JobSpec WorkloadGenerator::detection_job(int config_set) {
  // Five configuration sets: different input sizes and resource
  // allocations, all sufficient to finish, but set 4's over-allocation
  // exercises rarely-logged slow paths (the paper's FP mechanism, §6.4).
  static const int kInput[5] = {1, 5, 10, 20, 30};
  static const double kMemoryMult[5] = {1.3, 1.6, 2.5, 4.0, 8.0};
  const int s = config_set % 5;
  const auto& names = job_names(system_);
  JobSpec spec;
  spec.system = system_;
  spec.name = names[rng_.uniform(names.size())];
  spec.input_gb = kInput[s];
  spec.container_cores = 8;
  spec.container_memory_mb = static_cast<int>(spec.required_memory_mb() * kMemoryMult[s]);
  spec.seed = rng_.next_u64() | 1;
  ++counter_;
  return spec;
}

FaultPlan WorkloadGenerator::make_fault(ProblemKind kind, const ClusterSpec& cluster) {
  FaultPlan plan;
  plan.kind = kind;
  plan.target_node = static_cast<int>(rng_.uniform(cluster.num_workers));
  plan.at_fraction = rng_.uniform_real(0.15, 0.85);
  return plan;
}

}  // namespace intellog::simsys
