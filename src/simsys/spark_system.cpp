#include "simsys/spark_system.hpp"

#include <algorithm>

#include "simsys/event_sim.hpp"

namespace intellog::simsys {

namespace {

TemplateCorpus build_spark_corpus() {
  TemplateCorpus c("spark");
  // --- startup / acl ------------------------------------------------------
  c.add("signal.register", "INFO", "util.SignalUtils",
        "Registered signal handler for {W}", {"signal handler"}, {"register"});
  // "view"/"modify" land in the same Spell key ("Changing * acls to: *"),
  // so the sampled variable word is filtered and the entity is "acl".
  c.add("acl.view", "INFO", "SecurityManager",
        "Changing view acls to: {W}", {"acl"}, {"change"});
  // "modify" reads as a noun to a tagger, so an extractor will report the
  // phrase "modify acl"; the human-checked truth is just "acl" — this is a
  // deliberate false-positive source mirroring §6.2.
  c.add("acl.modify", "INFO", "SecurityManager",
        "Changing modify acls to: {W}", {"acl"}, {"change"});
  c.add("acl.security", "INFO", "SecurityManager",
        "Security manager initialized with ui acls disabled", {"security manager", "ui acl"},
        {"initialize"});

  // --- memory -------------------------------------------------------------
  c.add("memory.start", "INFO", "memory.MemoryStore",
        "MemoryStore started with capacity {V} MB", {"memory store", "capacity"}, {"start"});
  c.add("memory.allocate", "INFO", "memory.UnifiedMemoryManager",
        "Allocating {V} MB memory for execution and storage", {"memory", "execution", "storage"},
        {"allocate"});
  c.add("memory.clear", "INFO", "memory.MemoryStore",
        "MemoryStore cleared", {"memory store"}, {"clear"});

  // --- directory ----------------------------------------------------------
  c.add("dir.create", "INFO", "storage.DiskBlockManager",
        "Created local directory at {L}", {"local directory"}, {"create"});

  // --- driver -------------------------------------------------------------
  c.add("driver.connect", "INFO", "executor.CoarseGrainedExecutorBackend",
        "Connecting to driver at {L}", {"driver"}, {"connect"});
  c.add("driver.register", "INFO", "executor.CoarseGrainedExecutorBackend",
        "Successfully registered with driver", {"driver"}, {"register"});
  c.add("driver.heartbeat", "INFO", "executor.Executor",
        "Sending heartbeat to driver with {V} accumulator updates",
        {"heartbeat", "driver", "accumulator update"}, {"send"});

  // --- block --------------------------------------------------------------
  c.add("block.registering", "INFO", "storage.BlockManager",
        "Registering BlockManager {I:BLOCKMANAGER}", {"block manager"}, {"register"});
  c.add("block.registered", "INFO", "storage.BlockManagerMaster",
        "Registered BlockManager {I:BLOCKMANAGER}", {"block manager"}, {"register"});
  c.add("block.initialized", "INFO", "storage.BlockManager",
        "Initialized BlockManager {I:BLOCKMANAGER}", {"block manager"}, {"initialize"});
  c.add("block.store.memory", "INFO", "memory.MemoryStore",
        "Block {I:BLOCK} stored as values in memory (estimated size {V} KB, free {V} MB)",
        {"block", "memory"}, {"store"});
  c.add("block.get", "INFO", "storage.ShuffleBlockFetcherIterator",
        "Getting {V} non-empty blocks out of {V} blocks", {"block"}, {"get"});
  c.add("block.stop", "INFO", "storage.BlockManager",
        "BlockManager stopped", {"block manager"}, {"stop"});

  // --- task (child group) ---------------------------------------------------
  c.add("task.assigned", "INFO", "executor.CoarseGrainedExecutorBackend",
        "Got assigned task {I:TID}", {"task"}, {"assign"});
  c.add("task.running", "INFO", "executor.Executor",
        "Running task {I:TASK} in stage {I:STAGE} (TID {I:TID})", {"task", "stage", "tid"},
        {"run"});
  // "TID" is an abbreviation: the extractor reports the entity "tid" while
  // the checked truth omits it (same FP class the paper reports in §6.2).
  c.add("task.finished", "INFO", "executor.Executor",
        "Finished task {I:TASK} in stage {I:STAGE} (TID {I:TID}). {V} bytes result sent to "
        "driver",
        {"task", "stage", "tid", "result", "driver"}, {"finish", "send"});

  // --- fetch (child group) ---------------------------------------------------
  c.add("fetch.remote", "INFO", "storage.ShuffleBlockFetcherIterator",
        "Started {V} remote fetches in {V} ms", {"remote fetch"}, {"start"});
  c.add("fetch.broadcast", "INFO", "broadcast.TorrentBroadcast",
        "Started reading broadcast variable {I:BROADCAST}", {"broadcast variable"}, {"start"});
  c.add("fetch.broadcast.took", "INFO", "broadcast.TorrentBroadcast",
        "Reading broadcast variable {I:BROADCAST} took {V} ms", {"broadcast variable"},
        {"take"});

  // --- shutdown -------------------------------------------------------------
  c.add("shutdown.command", "INFO", "executor.CoarseGrainedExecutorBackend",
        "Driver commanded a shutdown", {"driver", "shutdown"}, {"command"});
  c.add("shutdown.hook.called", "INFO", "util.ShutdownHookManager",
        "Shutdown hook called", {"shutdown hook"}, {"call"});
  c.add("shutdown.hook.invoke", "INFO", "util.ShutdownHookManager",
        "Invoking shutdown hook", {"shutdown hook"}, {"invoke"});

  // --- driver-only extras (secondary groups, emitted in container 1) -------
  // The TaskSetManager line ties TID <-> host <-> executor <-> stage/task —
  // the identifier co-occurrences behind the Fig. 9 S3 graph.
  c.add("sched.task.start", "INFO", "scheduler.TaskSetManager",
        "Starting task {I:TASK} in stage {I:STAGE} (TID {I:TID}, {L}, executor {I:EXECUTOR})",
        {"task", "stage", "tid", "executor"}, {"start"});
  c.add("sched.submit", "INFO", "scheduler.DAGScheduler",
        "Submitting {V} missing tasks from final stage {I:STAGE}", {"task", "final stage"},
        {"submit"});
  c.add("sched.stage.done", "INFO", "scheduler.DAGScheduler",
        "Final stage {I:STAGE} finished in {V} s", {"final stage"}, {"finish"});
  c.add("sched.job.done", "INFO", "scheduler.DAGScheduler",
        "Job {I:JOB} finished: collect took {V} s", {"job"}, {"finish", "take"});
  c.add("kmeans.iteration", "INFO", "mllib.clustering.KMeans",
        "Iteration {V} converged with cost {V}", {"iteration", "cost"}, {"converge"});

  // --- additional executor-path templates -----------------------------------
  c.add("daemon.start", "INFO", "executor.CoarseGrainedExecutorBackend",
        "Started daemon with process name {I:PROC}", {"daemon", "process name"}, {"start"});
  c.add("conn.created", "INFO", "network.client.TransportClientFactory",
        "Successfully created connection to {L} after {V} ms", {"connection"}, {"create"});
  c.add("task.deserialized", "INFO", "executor.Executor",
        "Deserialized task {I:TID} in {V} ms", {"task"}, {"deserialize"});
  c.add("block.found.local", "INFO", "storage.BlockManager",
        "Found block {I:BLOCK} locally", {"block"}, {"find"});
  // "info" is an abbreviation: the extractor reports "info of block" while
  // the checked truth keeps only "block" (paper's §6.2 FP class).
  c.add("block.update", "INFO", "storage.BlockManagerMaster",
        "Updated info of block {I:BLOCK}", {"block"}, {"update"});
  c.add("block.put", "INFO", "storage.BlockManager",
        "Putting block {I:BLOCK} without replication took {V} ms", {"block", "replication"},
        {"put", "take"});
  c.add("rdd.remove", "INFO", "storage.BlockManagerSlaveEndpoint",
        "Removing RDD {I:RDD}", {"rdd"}, {"remove"});
  c.add("broadcast.remove", "INFO", "storage.BlockManagerSlaveEndpoint",
        "Removed broadcast {I:BROADCAST} of size {V} KB", {"broadcast"}, {"remove"});
  c.add("cleaner.accum", "INFO", "ContextCleaner",
        "Cleaned accumulator {I:ACC}", {"accumulator"}, {"clean"});
  c.add("cleaner.shuffle", "INFO", "ContextCleaner",
        "Cleaned shuffle {I:SHUFFLE}", {"shuffle"}, {"clean"});
  c.add("shuffle.write", "INFO", "shuffle.sort.SortShuffleWriter",
        "Shuffle write of {V} bytes took {V} ms", {"shuffle write"}, {"take"});
  c.add("shuffle.mapout", "INFO", "MapOutputTrackerWorker",
        "Getting {V} (of {V}) map outputs for shuffle {I:SHUFFLE}", {"map output", "shuffle"},
        {"get"});
  c.add("task.result.send", "INFO", "executor.Executor",
        "Sending result for {I:TID} directly to driver", {"result", "driver"}, {"send"});
  c.add("job.start", "INFO", "SparkContext",
        "Starting job: {W} at driver", {"job", "driver"}, {"start"});
  c.add("files.fetch", "INFO", "util.Utils",
        "Fetching {L} with timestamp {V}", {"timestamp"}, {"fetch"});
  c.add("exec.start.id", "INFO", "executor.CoarseGrainedExecutorBackend",
        "Starting executor ID {I:EXECUTOR} on host {L}", {"executor id", "host"}, {"start"});
  c.add("block.evict", "INFO", "memory.MemoryStore",
        "Evicting block {I:BLOCK} from memory to free {V} MB", {"block", "memory"},
        {"evict", "free"});
  c.add("block.tell", "INFO", "storage.BlockManager",
        "Telling driver about block {I:BLOCK}", {"driver", "block"}, {"tell"});
  c.add("rdd.persist", "INFO", "rdd.RDD",
        "Persisting RDD {I:RDD} to memory", {"rdd", "memory"}, {"persist"});
  c.add("split.assign", "INFO", "rdd.HadoopRDD",
        "Input split on {L} assigned to task {I:TID}", {"input split", "task"}, {"assign"});
  c.add("codegen", "INFO", "sql.catalyst.expressions.codegen.CodeGenerator",
        "Generated code for expression in {V} ms", {"code", "expression"}, {"generate"});
  c.add("sched.taskset.add", "INFO", "scheduler.TaskSchedulerImpl",
        "Adding task set {I:TASKSET} with {V} tasks", {"task set", "task"}, {"add"});
  c.add("sched.taskset.remove", "INFO", "scheduler.TaskSchedulerImpl",
        "Removed task set {I:TASKSET} after completion", {"task set", "completion"},
        {"remove"});
  c.add("driver.ui", "INFO", "ui.SparkUI",
        "Bound web UI to port {I:PORT}", {"web ui", "port"}, {"bind"});

  // --- anomaly-phase templates (never seen during tuned training) ----------
  c.add("spill.ing", "WARN", "util.collection.ExternalSorter",
        "Spilling in-memory map of {V} MB to disk ({V} times so far)", {"in-memory map", "disk"},
        {"spill"});
  c.add("spill.done", "INFO", "util.collection.ExternalSorter",
        "Spill of {V} MB to disk completed in {V} ms", {"spill", "disk"}, {"complete"});
  c.add("net.connect.fail", "ERROR", "network.shuffle.RetryingBlockFetcher",
        "Failed to connect to {L}", {}, {"fail", "connect"});
  c.add("net.retry", "INFO", "network.shuffle.RetryingBlockFetcher",
        "Retrying fetch ({V}/3) for {V} outstanding blocks after {V} ms", {"fetch", "block"},
        {"retry"});
  c.add("exec.lost", "ERROR", "scheduler.TaskSchedulerImpl",
        "Lost executor {I:EXECUTOR} on {L}: remote client disassociated",
        {"executor", "remote client"}, {"lose", "disassociate"});
  // Rare slow-shutdown line: the §6.4 false-positive mechanism. Configs are
  // tuned in training so workers never see the final driver heartbeat.
  c.add("shutdown.disassociated", "WARN", "executor.CoarseGrainedExecutorBackend",
        "Executor disconnected from driver during shutdown", {"executor", "driver", "shutdown"},
        {"disconnect"});
  return c;
}

}  // namespace

const TemplateCorpus& spark_corpus() {
  static const TemplateCorpus corpus = build_spark_corpus();
  return corpus;
}

JobResult SparkJobSim::run(const JobSpec& spec, const ClusterSpec& cluster,
                           const FaultPlan& fault) const {
  JobResult result;
  result.spec = spec;
  result.fault = fault;

  common::Rng rng(spec.seed);
  const TemplateCorpus& corpus = spark_corpus();

  const int num_containers =
      std::clamp(2 + spec.input_gb / 3, 4, std::max(4, cluster.num_workers));
  const int tasks_total = std::max(num_containers, spec.input_gb * 8);
  const int threads = std::clamp(spec.container_cores - 2, 2, 6);
  const bool spill_mode = !spec.memory_sufficient();

  // Job-level identifier spaces.
  int next_tid = 0;
  const std::uint64_t job_start = 3600000ULL * (1 + rng.uniform(20));

  // Fault timing: pick the absolute trigger time from the (rough) job span
  // (sessions emit a record every ~15 ms of simulated time).
  const std::uint64_t approx_span =
      1500 + static_cast<std::uint64_t>(tasks_total / num_containers) * 140;
  const std::uint64_t fault_time =
      job_start + static_cast<std::uint64_t>(fault.at_fraction * static_cast<double>(approx_span));
  const std::string fault_host =
      fault.target_node >= 0 ? cluster.node_name(fault.target_node) : "";

  // Which container the SessionAbort kills.
  const int abort_victim =
      fault.kind == ProblemKind::SessionAbort ? static_cast<int>(rng.uniform(num_containers)) : -1;

  // Task launches recorded for the driver's TaskSetManager lines.
  struct TaskStart {
    std::uint64_t ts;
    std::string task, stage, tid, node, executor;
  };
  std::vector<TaskStart> task_starts;

  const auto build_container = [&](int ci) {
    const int node_idx = static_cast<int>(rng.uniform(cluster.num_workers));
    const std::string node = cluster.node_name(node_idx);
    const std::string container =
        "container_" + std::to_string(spec.seed % 100000) + "_01_" + std::to_string(ci + 1);
    const std::string executor_id = std::to_string(ci + 1);
    const std::string bm_id = "BlockManagerId(" + executor_id + ")";
    const std::string driver_addr = "spark://CoarseGrainedScheduler@" + cluster.master_name() +
                                    ":" + std::to_string(37000 + ci);

    SessionBuilder b(corpus, container, node, job_start + rng.uniform(4000), rng.fork());

    // The Spark-19371 bug starves the upper half of containers of tasks.
    const bool starved = fault.spark19371_bug && ci >= num_containers / 2;
    const int my_tasks = starved ? 0 : std::max(1, tasks_total / num_containers);

    // ---- setup -----------------------------------------------------------
    b.emit("daemon.start", {std::to_string(10000 + b.rng().uniform(50000)) + "@" + node});
    for (const char* sig : {"TERM", "HUP", "INT"}) b.emit("signal.register", {sig});
    static const char* kUsers[] = {"hadoop", "alice", "spark", "svc-etl"};
    const std::string user = kUsers[spec.seed % 4];
    b.emit("acl.view", {user});
    b.emit("acl.modify", {user});
    b.emit("acl.security", {});
    // Racy setup: directory vs. memory order flips per container, keeping
    // the two groups PARALLEL (siblings in Fig. 8) rather than nested.
    const auto emit_dirs = [&] {
      b.emit("dir.create", {"/tmp/spark-" + executor_id + "/blockmgr-" +
                            std::to_string(b.rng().uniform(100000))});
      if (b.rng().chance(0.6)) {
        b.emit("dir.create", {"/tmp/spark-" + executor_id + "/userFiles-" +
                              std::to_string(b.rng().uniform(100000))});
      }
    };
    const auto emit_memory = [&] {
      b.emit("memory.start", {std::to_string(spec.container_memory_mb / 2)});
      b.emit("memory.allocate", {std::to_string(spec.container_memory_mb / 3)});
    };
    if (b.rng().chance(0.5)) {
      emit_dirs();
      emit_memory();
    } else {
      emit_memory();
      emit_dirs();
    }
    b.emit("exec.start.id", {executor_id, node});
    b.emit("driver.connect", {driver_addr});
    b.emit("conn.created", {cluster.master_name() + ":" + std::to_string(37000 + ci),
                            std::to_string(1 + b.rng().uniform(40))});
    b.emit("driver.register", {});
    b.emit("files.fetch", {"spark://" + cluster.master_name() + ":37000/jars/app.jar",
                           std::to_string(1550000000 + b.rng().uniform(100000))});
    b.emit("block.registering", {bm_id});
    b.emit("block.registered", {bm_id});
    b.emit("block.initialized", {bm_id});
    b.advance(50, 300);

    // ---- task execution ----------------------------------------------------
    bool perf_affected = false;
    bool fault_affected = false;
    const int stage_count = spec.name == "KMeans" ? 3 : 2;
    if (my_tasks > 0) {
      int emitted = 0;
      for (int stage = 0; stage < stage_count && emitted < my_tasks; ++stage) {
        const std::string stage_id = std::to_string(stage) + ".0";
        const int in_stage = std::max(1, my_tasks / stage_count);
        // Task-runner threads interleave within the wave.
        std::vector<SessionBuilder> runners;
        for (int t = 0; t < threads; ++t) runners.push_back(b.fork(t * 7));
        for (int k = 0; k < in_stage; ++k, ++emitted) {
          SessionBuilder& r = runners[static_cast<std::size_t>(k % threads)];
          const std::string tid = std::to_string(next_tid++);
          const std::string task_id = std::to_string(k) + ".0";
          task_starts.push_back({r.now(), task_id, stage_id, tid, node, executor_id});
          r.emit("task.assigned", {tid});
          r.emit("task.running", {task_id, stage_id, tid});
          r.emit("task.deserialized", {tid, std::to_string(1 + r.rng().uniform(25))});
          if (stage == 0 && k < 2) {
            const std::string bcast = "broadcast_" + std::to_string(stage);
            r.emit("fetch.broadcast", {bcast});
            r.emit("fetch.broadcast.took", {bcast, std::to_string(5 + r.rng().uniform(40))});
          }
          if (stage > 0) {
            // Shuffle read side; shuffle files occasionally allocate a new
            // local directory, so the directory group spans execution.
            if (r.rng().chance(0.15)) {
              r.emit("dir.create", {"/tmp/spark-" + executor_id + "/shuffle-" +
                                    std::to_string(r.rng().uniform(100000))});
            }
            r.emit("block.get", {std::to_string(4 + r.rng().uniform(60)),
                                 std::to_string(64 + r.rng().uniform(100))});
            // Network / node failure symptom: fetches against the dead host
            // fail and retry once the fault has triggered.
            if ((fault.kind == ProblemKind::NetworkFailure ||
                 fault.kind == ProblemKind::NodeFailure) &&
                r.now() >= fault_time && node != fault_host && r.rng().chance(0.55)) {
              const std::string target = fault_host + ":" + std::to_string(7337);
              for (int att = 1; att <= 3; ++att) {
                r.emit("net.connect.fail", {target}, /*injected=*/true);
                r.emit("net.retry",
                       {std::to_string(att), std::to_string(1 + r.rng().uniform(20)),
                        std::to_string(5000)},
                       /*injected=*/true);
              }
              fault_affected = true;
            } else {
              r.emit("fetch.remote", {std::to_string(1 + r.rng().uniform(8)),
                                      std::to_string(2 + r.rng().uniform(30))});
            }
          }
          const std::string rdd_block =
              "rdd_" + std::to_string(stage) + "_" + std::to_string(k);
          if (r.rng().chance(0.3)) {
            r.emit("split.assign", {"hdfs://master:9000/user/input/part-" +
                                        std::to_string(k) + ":0+134217728",
                                    tid});
          }
          if (r.rng().chance(0.7)) {
            if (r.rng().chance(0.2)) r.emit("rdd.persist", {rdd_block.substr(0, 5)});
            r.emit("block.store.memory",
                   {rdd_block, std::to_string(16 + r.rng().uniform(500)),
                    std::to_string(100 + r.rng().uniform(1000))});
            if (r.rng().chance(0.5)) r.emit("block.update", {rdd_block});
            if (r.rng().chance(0.3)) r.emit("block.tell", {rdd_block});
            if (r.rng().chance(0.07)) {
              r.emit("block.evict", {rdd_block, std::to_string(8 + r.rng().uniform(120))});
            }
          } else if (r.rng().chance(0.5)) {
            r.emit("block.found.local", {rdd_block});
          }
          if (r.rng().chance(0.15)) {
            r.emit("codegen", {std::to_string(5 + r.rng().uniform(200))});
          }
          if (stage == 0 && r.rng().chance(0.4)) {
            r.emit("shuffle.write", {std::to_string(1000 + r.rng().uniform(900000)),
                                     std::to_string(1 + r.rng().uniform(60))});
          }
          if (stage > 0 && r.rng().chance(0.3)) {
            r.emit("shuffle.mapout",
                   {std::to_string(1 + r.rng().uniform(16)),
                    std::to_string(16 + r.rng().uniform(16)),
                    "shuffle_" + std::to_string(stage - 1)});
          }
          if (r.rng().chance(0.25)) {
            r.emit("task.result.send", {tid});
          }
          if (r.rng().chance(0.2)) {
            r.emit("block.put", {rdd_block, std::to_string(1 + r.rng().uniform(30))});
          }
          if (spill_mode && r.rng().chance(0.5)) {
            r.emit("spill.ing",
                   {std::to_string(spec.container_memory_mb / 2),
                    std::to_string(1 + r.rng().uniform(6))},
                   /*injected=*/false);
            r.emit("spill.done",
                   {std::to_string(spec.container_memory_mb / 2),
                    std::to_string(100 + r.rng().uniform(900))},
                   /*injected=*/false);
            perf_affected = true;
          }
          r.emit("task.finished",
                 {task_id, stage_id, tid, std::to_string(900 + r.rng().uniform(3000))});
          r.advance(20, 200);
        }
        for (auto& r : runners) b.absorb(std::move(r));
        b.emit("driver.heartbeat", {std::to_string(b.rng().uniform(12))});
        // Context cleaner runs between waves.
        if (b.rng().chance(0.5)) {
          b.emit("cleaner.accum", {std::to_string(1 + b.rng().uniform(400))});
        }
        if (stage > 0 && b.rng().chance(0.4)) {
          b.emit("cleaner.shuffle", {std::to_string(stage - 1)});
        }
        if (b.rng().chance(0.3)) {
          b.emit("rdd.remove", {std::to_string(b.rng().uniform(8))});
        }
        if (b.rng().chance(0.3)) {
          b.emit("broadcast.remove", {"broadcast_" + std::to_string(stage),
                                      std::to_string(2 + b.rng().uniform(60))});
        }
        b.advance(40, 400);
      }
    } else {
      // Starved container: it still heartbeats, then idles until shutdown.
      b.emit("driver.heartbeat", {"0"});
      b.advance(2000, 8000);
      b.emit("driver.heartbeat", {"0"});
      perf_affected = fault.spark19371_bug;
    }

    // ---- driver-only extras (container 1) --------------------------------
    if (ci == 0) {
      // TaskSetManager start lines for every task in the job (other
      // containers ran first, so their launches are already recorded).
      const std::uint64_t resume_at = b.now();
      for (const auto& ts : task_starts) {
        // Clamp into the driver's own timeline so scheduler lines never
        // precede the driver's setup phase.
        b.set_now(std::max(ts.ts, resume_at));
        b.emit("sched.task.start", {ts.task, ts.stage, ts.tid, ts.node, ts.executor});
      }
      b.set_now(std::max(resume_at, b.now()));
      // Reference the last stage that actually ran tasks (small jobs may
      // not reach every planned stage).
      const int covered_stages =
          std::min(stage_count, std::max(1, tasks_total / num_containers));
      const std::string last_stage = std::to_string(covered_stages - 1) + ".0";
      b.emit("driver.ui", {std::to_string(4040)});
      b.emit("job.start", {spec.name == "KMeans" ? "collect" : "count"});
      for (int st = 0; st < stage_count; ++st) {
        b.emit("sched.taskset.add",
               {std::to_string(st) + ".0", std::to_string(tasks_total / stage_count)});
      }
      b.emit("sched.taskset.remove", {"0.0"});
      b.emit("sched.submit", {std::to_string(tasks_total / stage_count), last_stage});
      if (spec.name == "KMeans") {
        for (int it = 1; it <= 3; ++it) {
          b.emit("kmeans.iteration",
                 {std::to_string(it), std::to_string(100 + b.rng().uniform(900))});
        }
      }
      b.emit("sched.stage.done", {last_stage, std::to_string(1 + b.rng().uniform(60))});
      b.emit("sched.job.done", {std::to_string(0), std::to_string(2 + b.rng().uniform(90))});
    }

    // ---- shutdown ----------------------------------------------------------
    // The teardown steps race in real executors; randomizing their order
    // keeps the memory / driver / block groups PARALLEL siblings in the
    // HW-graph (Fig. 8) instead of spuriously nested.
    {
      std::vector<std::string> steps = {"block.stop", "memory.clear"};
      if (b.rng().chance(0.8)) steps.push_back("shutdown.command");
      b.rng().shuffle(steps);
      for (const auto& s : steps) b.emit(s, {});
    }
    b.emit("shutdown.hook.invoke", {});
    b.emit("shutdown.hook.called", {});
    // Slow shutdown under un-tuned configs: rare disassociation heartbeat
    // (§6.4 false-positive mechanism). Tuned memory -> never happens.
    if (!spec.memory_sufficient() || spec.container_memory_mb > spec.required_memory_mb() * 6) {
      if (b.rng().chance(0.04)) b.emit("shutdown.disassociated", {});
    }

    // ---- fault post-processing -------------------------------------------
    const auto truncate_marking = [&](std::uint64_t cutoff) {
      const std::size_t before = b.record_count();
      b.truncate_after(cutoff);
      if (b.record_count() < before) fault_affected = true;
    };
    if (fault.kind == ProblemKind::SessionAbort && ci == abort_victim) {
      truncate_marking(job_start + (b.now() - job_start) / 2);
    }
    if (fault.kind == ProblemKind::NodeFailure && node == fault_host) {
      truncate_marking(fault_time);
    }
    if (fault.kind == ProblemKind::NetworkFailure && node == fault_host) {
      // The victim node's own container loses the driver: logging stops.
      truncate_marking(fault_time + 2000);
    }

    if (fault_affected) result.affected_containers.insert(container);
    if (perf_affected) result.perf_affected_containers.insert(container);
    result.sessions.push_back(b.finish());
  };

  // Executors first, the driver container last so it can replay every
  // task launch; timestamps keep the log order realistic.
  for (int ci = 1; ci < num_containers; ++ci) build_container(ci);
  build_container(0);
  return result;
}

}  // namespace intellog::simsys
