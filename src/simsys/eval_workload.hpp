// The §6.4 evaluation workload (Table 6), shared between the bench
// harness, loggen's --table6 mode, and the scoring tests.
//
// Per system: 5 configuration sets x 6 jobs — per set, one job per
// injected problem kind (session abortion / network failure / node
// failure) plus three fault-free jobs, two of which overall run with
// borderline memory (the paper's "(P/B)" unexpected performance
// problems). The workload is deterministic in (system, seed), so a
// bench binary and a loggen-produced on-disk dataset built from the same
// seed describe the same ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simsys/workload.hpp"

namespace intellog::simsys {

/// One detection-phase job with its ground truth.
struct DetectionJob {
  JobResult result;
  bool injected = false;    ///< one of the three §6.4 problems was injected
  bool borderline = false;  ///< borderline memory: a real perf issue (P/B)
  ProblemKind kind = ProblemKind::None;
};

/// The Table-6 workload for one system: 15 injected + 15 clean jobs.
std::vector<DetectionJob> detection_workload(const std::string& system,
                                             std::uint64_t seed);

}  // namespace intellog::simsys
