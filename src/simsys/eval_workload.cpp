#include "simsys/eval_workload.hpp"

namespace intellog::simsys {

std::vector<DetectionJob> detection_workload(const std::string& system,
                                             std::uint64_t seed) {
  ClusterSpec cluster;
  WorkloadGenerator gen(system, seed);
  std::vector<DetectionJob> out;
  for (int config = 0; config < 5; ++config) {
    for (const ProblemKind kind :
         {ProblemKind::SessionAbort, ProblemKind::NetworkFailure, ProblemKind::NodeFailure}) {
      DetectionJob dj;
      dj.injected = true;
      dj.kind = kind;
      // The paper's injection tool triggers the problem *during* job
      // execution; re-draw the trigger point / victim node until the fault
      // actually disturbs at least one session (a node failing after the
      // job finished is not an injected problem).
      const JobSpec spec = gen.detection_job(config);
      for (int attempt = 0; attempt < 8; ++attempt) {
        const FaultPlan fault = gen.make_fault(kind, cluster);
        dj.result = run_job(spec, cluster, fault);
        if (!dj.result.affected_containers.empty()) break;
      }
      out.push_back(std::move(dj));
    }
    for (int clean = 0; clean < 3; ++clean) {
      DetectionJob dj;
      JobSpec spec = gen.detection_job(config);
      // Two borderline-memory jobs across the 15 clean ones (§6.4's
      // unexpected performance problems).
      if (clean == 2 && (config == 1 || config == 3)) {
        spec.container_memory_mb = static_cast<int>(spec.required_memory_mb() * 0.85);
        dj.borderline = true;
      }
      dj.result = run_job(spec, cluster);
      out.push_back(std::move(dj));
    }
  }
  return out;
}

}  // namespace intellog::simsys
