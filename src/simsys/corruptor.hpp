// LogStreamCorruptor — a seeded adversary for the ingestion layer (§6.4).
//
// The paper's detection phase consumes logs from live, *failing* clusters:
// exactly when detection matters most, the log stream itself degrades —
// writers die mid-line, shippers re-deliver and reorder, files rotate under
// the tail, disks interleave garbage. The corruptor reproduces those
// conditions deterministically: given a rendered log stream (one
// container's file as raw lines) and a seed, it emits a mutated stream plus
// a per-line provenance map, so every robustness claim ("no clean record is
// lost, no crash, classification parity") is checkable and reproducible
// from the seed alone.
//
// Fault kinds (each independently enabled/weighted via CorruptionSpec):
//  - torn lines:        a line truncated at a random byte (writer killed or
//                       torn 4k page at rotation),
//  - duplicates:        a recent line re-delivered verbatim (at-least-once
//                       shipping),
//  - reorder:           a line delayed up to `reorder_window` positions
//                       (multi-threaded appenders / shipper races),
//  - rotation artifact: copytruncate rotation mid-stream — a torn re-emit
//                       of the current line followed by a duplicated tail,
//  - garbage:           a burst of random bytes (NULs, invalid UTF-8,
//                       control characters) spliced between lines,
//  - drop bursts:       1..`drop_burst_max` consecutive lines lost,
//  - timestamp skew:    a line re-rendered with its timestamp shifted by up
//                       to ±`skew_max_ms` (clock drift across writers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"

namespace intellog::simsys {

/// Per-kind probabilities (evaluated per input line; `rotation_p` per call)
/// plus the structural bounds. All-zero = identity transform.
struct CorruptionSpec {
  double torn_p = 0;
  double duplicate_p = 0;
  double reorder_p = 0;
  double garbage_p = 0;
  double rotation_p = 0;  ///< probability that this stream rotates at all
  double drop_p = 0;
  double skew_p = 0;
  std::size_t reorder_window = 4;    ///< max positions a line is delayed
  std::size_t drop_burst_max = 4;    ///< max consecutive lines per drop
  std::size_t garbage_max_bytes = 256;
  std::int64_t skew_max_ms = 5000;

  /// Every fault kind enabled at probability `intensity` (the chaos-soak
  /// default; 0.02 disturbs a few percent of lines, like a bad but live
  /// node).
  static CorruptionSpec all(double intensity = 0.02);
};

/// What the corruptor did, summed across corrupt() calls.
struct CorruptionStats {
  std::size_t input_lines = 0;
  std::size_t emitted_lines = 0;
  std::size_t torn = 0;
  std::size_t duplicated = 0;
  std::size_t reordered = 0;
  std::size_t garbage = 0;
  std::size_t rotations = 0;
  std::size_t dropped = 0;
  std::size_t skewed = 0;

  /// Lines disturbed in any way (for reporting).
  std::size_t total_faults() const {
    return torn + duplicated + reordered + garbage + rotations + dropped + skewed;
  }
  common::Json to_json() const;
};

class LogStreamCorruptor {
 public:
  LogStreamCorruptor(CorruptionSpec spec, std::uint64_t seed);

  /// One corrupted stream plus provenance. `origin[i]` is the index of the
  /// input line that output line `i` reproduces *byte-identically*, or -1
  /// for anything mutated or injected (torn copies, garbage, skewed
  /// re-renders). Duplicate re-deliveries keep their origin (they are
  /// intact content — the dedupe layer is expected to collapse them).
  /// `dropped` lists input indices that never reach the output.
  struct Result {
    std::vector<std::string> lines;
    std::vector<std::int64_t> origin;
    std::vector<std::size_t> dropped;
  };

  /// Corrupts one stream (one session's rendered lines). Deterministic in
  /// (spec, seed, call sequence).
  Result corrupt(const std::vector<std::string>& lines);

  /// Reads every `*.log` file under `src_dir` (sorted, recursively),
  /// corrupts each stream independently, and writes the mutated files to
  /// `dst_dir` (flattened, created if needed). Returns per-file results
  /// keyed by file stem, in sorted order.
  std::vector<std::pair<std::string, Result>> corrupt_directory(const std::string& src_dir,
                                                                const std::string& dst_dir);

  const CorruptionStats& stats() const { return stats_; }

 private:
  void push_garbage(Result& out);
  std::string skew_line(const std::string& line, bool& changed);

  CorruptionSpec spec_;
  common::Rng rng_;
  CorruptionStats stats_;
};

}  // namespace intellog::simsys
