// Cluster and job model for the simulated testbed.
//
// Mirrors the paper's experiment setup (§6.1): a 27-node YARN-managed
// cluster (1 master + 26 workers), jobs submitted per system with varying
// input sizes and per-container resources. Execution is encapsulated in
// YARN containers; every container's log stream becomes one session.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace intellog::simsys {

/// Physical cluster shape.
struct ClusterSpec {
  int num_workers = 26;
  int cores_per_node = 32;
  int memory_mb_per_node = 128 * 1024;

  /// Worker node host name, 0-based ("host1".."host26").
  std::string node_name(int i) const { return "host" + std::to_string(i + 1); }
  std::string master_name() const { return "master"; }
};

/// One submitted job (the workload generator produces these).
struct JobSpec {
  std::string name;    ///< "WordCount", "KMeans", "TPCH-Q8", ...
  std::string system;  ///< "spark" | "mapreduce" | "tez"
  int input_gb = 10;
  int container_cores = 8;
  int container_memory_mb = 4096;
  std::uint64_t seed = 1;

  /// Memory a container needs for this input size to avoid spilling
  /// intermediate data to disk (drives the §6.4 performance-issue case).
  /// Per-system: Hive-on-Tez query operators are the hungriest, MapReduce
  /// streams and needs the least.
  int required_memory_mb() const {
    if (system == "mapreduce") return 128 + input_gb * 64;
    if (system == "tez") return 256 + input_gb * 160;
    return 256 + input_gb * 96;  // spark
  }
  bool memory_sufficient() const { return container_memory_mb >= required_memory_mb(); }
};

/// The problems the injection tool emulates (§6.4) plus the two unexpected
/// anomaly modes used by the case studies.
enum class ProblemKind { None, SessionAbort, NetworkFailure, NodeFailure };

std::string to_string(ProblemKind kind);

/// What (if anything) goes wrong while a job runs.
struct FaultPlan {
  ProblemKind kind = ProblemKind::None;
  int target_node = -1;       ///< victim node index for network/node failure
  double at_fraction = 0.5;   ///< when the problem triggers, as job progress
  bool spark19371_bug = false;  ///< Spark-19371: containers with no tasks
};

}  // namespace intellog::simsys
