// Per-session log-event construction with simulated time and concurrency.
//
// Components inside one container (task runner threads, fetcher threads,
// event dispatchers) log concurrently, which is exactly why data-analytics
// log sessions have interchangeable orders (§2.2). SessionBuilder models
// each thread as a forked builder with its own clock; finish() merges all
// streams by timestamp, reproducing the interleaving a real log file shows.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "logparse/session.hpp"
#include "simsys/template_corpus.hpp"

namespace intellog::simsys {

class SessionBuilder {
 public:
  SessionBuilder(const TemplateCorpus& corpus, std::string container_id, std::string node,
                 std::uint64_t start_ms, common::Rng rng);

  /// Emits one instance of a named template. `values` must match the
  /// template's placeholder count. Advances the clock by a small random
  /// step afterwards.
  void emit(std::string_view tmpl_name, std::vector<std::string> values = {},
            bool injected = false);

  /// Advances the simulated clock by a uniform random step in [min,max] ms.
  void advance(std::uint64_t min_ms, std::uint64_t max_ms);

  std::uint64_t now() const { return now_ms_; }
  void set_now(std::uint64_t t) { now_ms_ = t; }
  const std::string& node() const { return node_; }
  const std::string& container_id() const { return container_id_; }
  common::Rng& rng() { return rng_; }

  /// Starts a concurrent thread stream at the current clock (+offset).
  SessionBuilder fork(std::uint64_t offset_ms = 0);

  /// Merges a finished thread stream into this builder.
  void absorb(SessionBuilder&& thread);

  /// Drops every record after `cutoff_ms` (SIGKILL / node loss semantics:
  /// the process stops logging instantly, no cleanup lines).
  void truncate_after(std::uint64_t cutoff_ms);

  /// Sorts all streams by timestamp and returns the session.
  logparse::Session finish();

  std::size_t record_count() const { return records_.size(); }

 private:
  const TemplateCorpus& corpus_;
  std::string container_id_;
  std::string node_;
  std::uint64_t now_ms_;
  common::Rng rng_;
  std::vector<logparse::LogRecord> records_;
};

}  // namespace intellog::simsys
