#include "simsys/mapreduce_system.hpp"

#include <algorithm>
#include <functional>

#include "simsys/event_sim.hpp"

namespace intellog::simsys {

namespace {

TemplateCorpus build_mapreduce_corpus() {
  TemplateCorpus c("mapreduce");
  // --- MRAppMaster ---------------------------------------------------------
  c.add("am.created", "INFO", "mapreduce.v2.app.MRAppMaster",
        "Created MRAppMaster for application {I:APP}", {"mr app master", "application"},
        {"create"});
  c.add("am.job.transition", "INFO", "mapreduce.v2.app.job.impl.JobImpl",
        "Job {I:JOB} transitioned from {W} to {W}", {"job"}, {"transition"});
  c.add("am.launch", "INFO", "mapreduce.v2.app.launcher.ContainerLauncherImpl",
        "Launched container {I:CONTAINER} for task attempt {I:ATTEMPT}",
        {"container", "task attempt"}, {"launch"});
  c.add("am.task.transition", "INFO", "mapreduce.v2.app.job.impl.TaskAttemptImpl",
        "Task attempt {I:ATTEMPT} transitioned from {W} to {W}", {"task attempt"},
        {"transition"});
  c.add("am.task.succeeded", "INFO", "mapreduce.v2.app.job.impl.TaskImpl",
        "Task succeeded with attempt {I:ATTEMPT}", {"task", "attempt"}, {"succeed"});
  c.add("am.num.completed", "INFO", "mapreduce.v2.app.rm.RMContainerAllocator",
        "numCompletedTasks={V} numScheduledMaps={V} numScheduledReduces={V}", {}, {},
        /*natural_language=*/false);
  c.add("am.resources", "INFO", "mapreduce.v2.app.rm.RMContainerAllocator",
        "headroom memory={V} vCores={V}", {}, {}, /*natural_language=*/false);
  c.add("am.staging.delete", "INFO", "mapreduce.v2.app.MRAppMaster",
        "Deleting staging directory {L}", {"directory"}, {"delete"});
  c.add("am.node.lost", "ERROR", "mapreduce.v2.app.rm.RMContainerAllocator",
        "Lost node {L}: removing all pending containers", {"node", "container"},
        {"lose", "remove"});
  c.add("am.fetch.failures", "WARN", "mapreduce.v2.app.job.impl.JobImpl",
        "Too many fetch failures for attempt {I:ATTEMPT}, failing the task attempt",
        {"fetch failure", "task attempt"}, {"fail"});

  // --- mapper containers -----------------------------------------------------
  // "Starting ..." / "Stopping ..." share the Spell key "* MapTask metrics
  // system" — the paper's Fig. 3 example. The 4-word entity is a deliberate
  // false-negative source (§6.2: FNs come from 4+-word phrases).
  c.add("map.metrics.start", "INFO", "metrics2.impl.MetricsSystemImpl",
        "Starting MapTask metrics system", {"map task metrics system"}, {"start"});
  c.add("map.metrics.stop", "INFO", "metrics2.impl.MetricsSystemImpl",
        "Stopping MapTask metrics system", {"map task metrics system"}, {"stop"});
  c.add("map.metrics.snapshot", "INFO", "metrics2.impl.MetricsSystemImpl",
        "Scheduled snapshot period at {V} seconds", {"snapshot period"}, {"schedule"});
  c.add("map.split", "INFO", "mapred.MapTask",
        "Processing split: {L}", {"split"}, {"process"});
  c.add("map.collector", "INFO", "mapred.MapTask",
        "mapOutputCollectorClass={W} sortSpillPercent={V}", {}, {},
        /*natural_language=*/false);
  c.add("map.spill.finished", "INFO", "mapred.MapTask",
        "Finished spill {I:SPILL}", {"spill"}, {"finish"});
  c.add("map.flush", "INFO", "mapred.MapTask",
        "Starting flush of map output", {"map output"}, {"start"});
  c.add("map.done", "INFO", "mapred.Task",
        "Task {I:ATTEMPT} is done. And is in the process of committing", {"task", "process"},
        {"do", "commit"});
  c.add("map.commit.allowed", "INFO", "mapred.Task",
        "Task attempt {I:ATTEMPT} is allowed to commit now", {"task attempt"},
        {"allow", "commit"});
  c.add("map.output.saved", "INFO", "output.FileOutputCommitter",
        "Saved output of task {I:ATTEMPT} to {L}", {"output of task"}, {"save"});

  // --- reducer containers -----------------------------------------------------
  c.add("red.plugin", "INFO", "mapred.ReduceTask",
        "Using ShuffleConsumerPlugin: {W}", {"shuffle consumer plugin"}, {"use"});
  c.add("red.eventfetcher", "INFO", "reduce.EventFetcher",
        "EventFetcher thread started for {I:ATTEMPT}", {"event fetcher thread"}, {"start"});
  // Fig. 1 subroutine: about-to-shuffle -> read bytes -> host freed.
  c.add("red.fetch.about", "INFO", "reduce.Fetcher",
        "fetcher # {I:FETCHER} about to shuffle output of map {I:ATTEMPT}",
        {"fetcher", "output of map"}, {"shuffle"});
  c.add("red.fetch.read", "INFO", "reduce.Fetcher",
        "[fetcher # {I:FETCHER}] read {V} bytes from map-output for {I:ATTEMPT}",
        {"fetcher", "map-output"}, {"read"});
  c.add("red.fetch.freed", "INFO", "reduce.Fetcher",
        "{L} freed by fetcher # {I:FETCHER} in {V} ms", {"fetcher"}, {"free"});
  c.add("red.map.completed", "INFO", "reduce.ShuffleSchedulerImpl",
        "map {I:ATTEMPT} completed successfully", {"map"}, {"complete"});
  c.add("red.merge.segments", "INFO", "mapred.Merger",
        "Merging {V} sorted segments", {"segment"}, {"merge"});
  // Nominal sentence, no predicate: the paper's missed-operation example.
  c.add("red.merge.last", "INFO", "mapred.Merger",
        "Down to the last merge-pass, with {V} segments left of total size: {V} bytes",
        {"last merge-pass", "segment", "total size"}, {"merge"});
  c.add("red.merge.inmem", "INFO", "reduce.MergeManagerImpl",
        "Initiating in-memory merge with {V} segments", {"in-memory merge", "segment"},
        {"initiate"});
  c.add("red.phase", "INFO", "mapred.ReduceTask",
        "Starting reduce phase", {"reduce phase"}, {"start"});
  // Clause-less prose line that real MapReduce logs: counts as non-NL.
  c.add("red.executor.complete", "INFO", "mapred.ReduceTask",
        "reduce task executor complete.", {"reduce task executor"}, {},
        /*natural_language=*/false);

  // --- additional templates ---------------------------------------------------
  c.add("am.recovery", "INFO", "mapreduce.v2.app.MRAppMaster",
        "Recovery is enabled for this application", {"recovery", "application"}, {"enable"});
  c.add("am.committer", "INFO", "mapreduce.v2.app.MRAppMaster",
        "OutputCommitter set in configuration: {W}",
        {"output committer", "configuration", "file output committer"}, {"set"});
  c.add("am.token", "INFO", "mapreduce.v2.app.MRAppMaster",
        "Adding delegation token for {W}", {"delegation token"}, {"add"});
  // "is" is a copula, not an operation: no predicate to extract.
  c.add("am.progress", "INFO", "mapreduce.v2.app.job.impl.TaskAttemptImpl",
        "Progress of attempt {I:ATTEMPT} is : {V}", {"progress of attempt"}, {});
  c.add("map.records", "INFO", "mapred.MapTask",
        "Processing {V} input records from split", {"input record", "split"}, {"process"});
  c.add("map.softlimit", "INFO", "mapred.MapTask",
        "Soft limit at {V} bytes", {"soft limit"}, {}, /*natural_language=*/false);
  c.add("map.kvbuffer", "INFO", "mapred.MapTask",
        "kvstart = {V}; kvend = {V}; length = {V}", {}, {}, /*natural_language=*/false);
  c.add("map.committer.class", "INFO", "mapred.Task",
        "Using output committer class {W}", {"output committer class"}, {"use"});
  c.add("red.merge.thread", "INFO", "reduce.MergeManagerImpl",
        "Starting thread to merge on-disk files", {"thread", "on-disk file"},
        {"start", "merge"});
  c.add("red.merge.satisfy", "INFO", "mapred.Merger",
        "Merged {V} segments, {V} bytes to disk to satisfy reduce memory limit",
        {"segment", "disk", "reduce memory limit"}, {"merge", "satisfy"});
  c.add("red.fetch.schedule", "INFO", "reduce.ShuffleSchedulerImpl",
        "Scheduling fetch of {V} outputs from {L}", {"fetch", "output"}, {"schedule"});
  // 4-word entity -> deliberate FN source (§6.2).
  c.add("red.events.sleep", "INFO", "reduce.EventFetcher",
        "GetMapEventsThread about to sleep for {V} ms", {"get map events thread"}, {"sleep"});
  c.add("task.commit.go", "INFO", "mapred.Task",
        "attempt {I:ATTEMPT} given a go for committing the task output", {"task output"},
        {"give", "commit"});
  c.add("map.jvm.metrics", "INFO", "jvm.JvmMetrics",
        "Initializing JVM Metrics for session {I:SESSION}", {"jvm metrics", "session"},
        {"initialize"});
  // 4-word entity -> FN source.
  c.add("map.calculator", "INFO", "mapred.Task",
        "Using ResourceCalculatorProcessTree to measure usage",
        {"resource calculator process tree", "usage"}, {"use", "measure"});
  c.add("map.numreduces", "INFO", "mapred.MapTask",
        "numReduceTasks: {V}", {}, {}, /*natural_language=*/false);
  c.add("map.sort.buffer", "INFO", "mapred.MapTask",
        "Sorting map output buffer before spill", {"map output buffer", "spill"}, {"sort"});
  c.add("map.report", "INFO", "mapred.Task",
        "Reporting progress to application master", {"progress", "application master"},
        {"report"});
  c.add("red.fetch.assign", "INFO", "reduce.ShuffleSchedulerImpl",
        "Assigning {L} with {V} outputs to fetcher # {I:FETCHER}", {"output", "fetcher"},
        {"assign"});
  c.add("red.fetch.verify", "INFO", "reduce.Fetcher",
        "Verifying request for map {I:ATTEMPT}", {"request", "map"}, {"verify"});
  c.add("red.inmem.shuffle", "INFO", "reduce.InMemoryMapOutput",
        "Shuffling {V} bytes into in-memory merge buffer", {"in-memory merge buffer"},
        {"shuffle"});
  c.add("red.ondisk.move", "INFO", "reduce.MergeManagerImpl",
        "Moving map output to on-disk merge queue", {"map output", "on-disk merge queue"},
        {"move"});
  c.add("red.fetch.rate", "INFO", "reduce.Fetcher",
        "Fetched {V} bytes from map {I:ATTEMPT} at {V} KB per second", {"map"}, {"fetch"});
  // One-off child-JVM setup lines (order varies run to run).
  c.add("child.tokens", "INFO", "mapred.YarnChild",
        "Executing with tokens for job {I:JOB}", {"token", "job"}, {"execute"});
  c.add("child.sleep.conf", "INFO", "mapred.YarnChild",
        "Sleeping for {V} ms before retrying again", {}, {"sleep", "retry"});
  c.add("child.symlink", "INFO", "mapred.YarnChild",
        "Creating symlink {L} for localized file", {"symlink", "file"}, {"create"});
  c.add("child.workdir", "INFO", "mapred.YarnChild",
        "Configuring job with working directory {L}", {"job", "directory"}, {"configure"});
  c.add("child.ugi", "INFO", "mapred.YarnChild",
        "Running child with user {W}", {"child", "user"}, {"run"});
  c.add("child.limits", "INFO", "mapred.YarnChild",
        "Checking resource limits for container", {"resource limit", "container"}, {"check"});
  c.add("child.deprecation", "WARN", "conf.Configuration",
        "Configuration property {W} is deprecated", {"configuration property"}, {"deprecate"});
  c.add("child.codec", "INFO", "compress.CodecPool",
        "Got brand-new compressor {W}", {"brand-new compressor"}, {"get"});

  // --- anomaly-phase templates ---------------------------------------------
  c.add("red.fetch.fail", "ERROR", "reduce.Fetcher",
        "fetcher # {I:FETCHER} failed to connect to {L} with {V} map outputs",
        {"fetcher", "map output"}, {"fail", "connect"});
  c.add("red.fetch.retry", "WARN", "reduce.Fetcher",
        "fetcher # {I:FETCHER} retrying connect to {L} in {V} ms", {"fetcher"},
        {"retry", "connect"});
  c.add("map.spill.extra", "WARN", "mapred.MapTask",
        "Spilling map output because record buffer is full", {"map output", "record buffer"},
        {"spill"});
  // Rare slow path (over-allocated detection configs only): §6.4 FP source.
  c.add("task.ping.retry", "WARN", "mapred.Task",
        "Communication retry: pinging application master again", {"communication retry",
        "application master"}, {"retry"});
  return c;
}

}  // namespace

const TemplateCorpus& mapreduce_corpus() {
  static const TemplateCorpus corpus = build_mapreduce_corpus();
  return corpus;
}

JobResult MapReduceJobSim::run(const JobSpec& spec, const ClusterSpec& cluster,
                               const FaultPlan& fault) const {
  JobResult result;
  result.spec = spec;
  result.fault = fault;

  common::Rng rng(spec.seed ^ 0x6d72ULL);
  const TemplateCorpus& corpus = mapreduce_corpus();

  const int num_mappers = std::clamp(spec.input_gb * 8, 6, 240);
  const int num_reducers = std::clamp(spec.input_gb / 2, 1, 12);
  const bool spill_mode = !spec.memory_sufficient();

  const std::uint64_t job_start = 3600000ULL * (1 + rng.uniform(20));
  // Sessions emit every ~15 ms of simulated time; the reducers' fetch phase
  // (where network symptoms surface) runs roughly 4-10 s after job start.
  const std::uint64_t approx_span = 6000 + static_cast<std::uint64_t>(num_mappers) * 80;
  const std::uint64_t fault_time =
      job_start + static_cast<std::uint64_t>(fault.at_fraction * static_cast<double>(approx_span));
  const std::string fault_host =
      fault.target_node >= 0 ? cluster.node_name(fault.target_node) : "";

  const std::string app_id = "application_" + std::to_string(1550000000 + spec.seed % 100000) +
                             "_" + std::to_string(1 + spec.seed % 97);
  const std::string job_id = "job_" + std::to_string(1550000000 + spec.seed % 100000) + "_" +
                             std::to_string(1 + spec.seed % 97);
  const auto attempt_id = [&](int task, bool reduce) {
    return std::string("attempt_") + std::to_string(1550000000 + spec.seed % 100000) + "_" +
           (reduce ? "r" : "m") + "_" + std::to_string(task) + "_0";
  };
  const auto container_id = [&](int idx) {
    return "container_" + std::to_string(spec.seed % 100000) + "_02_" + std::to_string(idx);
  };

  const int total_containers = 1 + num_mappers + num_reducers;
  const int abort_victim = fault.kind == ProblemKind::SessionAbort
                               ? static_cast<int>(rng.uniform(total_containers))
                               : -1;

  // Node placement for every container; mappers' hosts are fetch sources.
  std::vector<int> placement(static_cast<std::size_t>(total_containers));
  for (auto& p : placement) p = static_cast<int>(rng.uniform(cluster.num_workers));

  const auto finish_session = [&](SessionBuilder& b, int idx, bool& fault_affected) {
    const std::string node = cluster.node_name(placement[static_cast<std::size_t>(idx)]);
    const auto truncate_marking = [&](std::uint64_t cutoff) {
      const std::size_t before = b.record_count();
      b.truncate_after(cutoff);
      if (b.record_count() < before) fault_affected = true;
    };
    if (fault.kind == ProblemKind::SessionAbort && idx == abort_victim) {
      truncate_marking(job_start + (b.now() - job_start) / 2);
    }
    if (fault.kind == ProblemKind::NodeFailure && node == fault_host) {
      truncate_marking(fault_time);
    }
  };

  // ---- MRAppMaster session (container 1) -----------------------------------
  {
    SessionBuilder b(corpus, container_id(1), cluster.node_name(placement[0]), job_start,
                     rng.fork());
    bool fault_affected = false;
    b.emit("am.created", {app_id});
    b.emit("am.recovery", {});
    b.emit("am.committer", {"FileOutputCommitter"});  // class name, no package
    b.emit("am.token", {"HDFS_DELEGATION_TOKEN"});
    b.emit("am.job.transition", {job_id, "NEW", "INITED"});
    b.emit("am.job.transition", {job_id, "INITED", "SETUP"});
    b.emit("am.job.transition", {job_id, "SETUP", "RUNNING"});
    for (int m = 0; m < num_mappers; ++m) {
      b.emit("am.launch", {container_id(2 + m), attempt_id(m, false)});
      b.emit("am.task.transition", {attempt_id(m, false), "ASSIGNED", "RUNNING"});
      if (b.rng().chance(0.25)) {
        b.emit("am.progress", {attempt_id(m, false),
                               "0." + std::to_string(1 + b.rng().uniform(9))});
      }
      if (m % 5 == 0) {
        b.emit("am.num.completed",
               {std::to_string(m), std::to_string(num_mappers), std::to_string(num_reducers)});
        b.emit("am.resources", {std::to_string(4096 + b.rng().uniform(8192)),
                                std::to_string(1 + b.rng().uniform(16))});
      }
      b.emit("am.task.succeeded", {attempt_id(m, false)});
    }
    if (fault.kind == ProblemKind::NodeFailure && b.now() >= fault_time && !fault_host.empty()) {
      b.emit("am.node.lost", {fault_host + ":8041"}, /*injected=*/true);
      fault_affected = true;
    }
    for (int r = 0; r < num_reducers; ++r) {
      b.emit("am.launch", {container_id(2 + num_mappers + r), attempt_id(r, true)});
      b.emit("am.task.transition", {attempt_id(r, true), "ASSIGNED", "RUNNING"});
      if (fault.kind != ProblemKind::None && b.rng().chance(0.15)) {
        // Downstream symptom the AM occasionally records under faults.
        if (fault.kind == ProblemKind::NetworkFailure || fault.kind == ProblemKind::NodeFailure) {
          b.emit("am.fetch.failures", {attempt_id(r, true)}, /*injected=*/true);
          fault_affected = true;
        }
      }
      b.emit("am.task.succeeded", {attempt_id(r, true)});
    }
    b.emit("am.job.transition", {job_id, "RUNNING", "COMMITTING"});
    b.emit("am.job.transition", {job_id, "COMMITTING", "SUCCEEDED"});
    b.emit("am.staging.delete", {"hdfs://master:9000/tmp/hadoop-yarn/staging/" + job_id});
    finish_session(b, 0, fault_affected);
    if (fault_affected) result.affected_containers.insert(b.container_id());
    result.sessions.push_back(b.finish());
  }

  // ---- mapper sessions -------------------------------------------------------
  for (int m = 0; m < num_mappers; ++m) {
    const int idx = 1 + m;
    SessionBuilder b(corpus, container_id(2 + m),
                     cluster.node_name(placement[static_cast<std::size_t>(idx)]),
                     job_start + 1500 + rng.uniform(static_cast<std::uint64_t>(approx_span) / 2),
                     rng.fork());
    bool fault_affected = false;
    bool perf_affected = false;
    b.emit("map.jvm.metrics", {std::to_string(b.rng().uniform(1000))});
    b.emit("map.metrics.start", {});
    b.emit("map.metrics.snapshot", {"10"});
    if (b.rng().chance(0.6)) b.emit("map.calculator", {});
    b.emit("map.split",
           {"hdfs://master:9000/user/input/part-" + std::to_string(m) + ":0+134217728"});
    b.emit("map.numreduces", {std::to_string(num_reducers)});
    // Setup lines come from independent subsystems: their order varies and
    // several are optional, so the next log key is one of a dozen — the
    // §6.4 unpredictability that defeats next-key prediction.
    {
      std::vector<std::function<void()>> setup;
      setup.push_back([&] {
        b.emit("map.collector", {"org.apache.hadoop.mapred.MapTask$MapOutputBuffer", "80"});
      });
      setup.push_back([&] { b.emit("map.committer.class", {"FileOutputCommitter"}); });
      setup.push_back([&] { b.emit("map.softlimit", {std::to_string(83886080)}); });
      setup.push_back([&] {
        b.emit("map.kvbuffer", {std::to_string(b.rng().uniform(26214400)),
                                std::to_string(b.rng().uniform(26214400)),
                                std::to_string(b.rng().uniform(1000000))});
      });
      const auto optional = [&](double p, std::function<void()> fn) {
        if (b.rng().chance(p)) setup.push_back(std::move(fn));
      };
      optional(0.7, [&] { b.emit("child.tokens", {job_id}); });
      optional(0.2, [&] {
        b.emit("child.sleep.conf", {std::to_string(100 + b.rng().uniform(400))});
      });
      optional(0.5, [&] {
        b.emit("child.symlink", {"/hadoop/yarn/local/usercache/filecache/" +
                                 std::to_string(b.rng().uniform(100))});
      });
      optional(0.6, [&] {
        b.emit("child.workdir",
               {"/hadoop/yarn/local/usercache/appcache/" + app_id + "/work"});
      });
      optional(0.5, [&] {
        static const char* kUsers[] = {"hadoop", "alice", "etl", "svc"};
        b.emit("child.ugi", {kUsers[b.rng().uniform(4)]});
      });
      optional(0.3, [&] { b.emit("child.limits", {}); });
      optional(0.4, [&] {
        static const char* kKeys[] = {"mapred.job.id", "mapred.task.partition",
                                      "mapred.map.tasks"};
        b.emit("child.deprecation", {kKeys[b.rng().uniform(3)]});
      });
      optional(0.4, [&] { b.emit("child.codec", {"[deflate-1]"}); });
      b.rng().shuffle(setup);
      for (auto& step : setup) step();
    }
    // The record-processing main thread and the SpillThread interleave,
    // like in the real MapTask.
    {
      SessionBuilder spill_thread = b.fork(40);
      const int record_batches = 3 + static_cast<int>(b.rng().uniform(2 + spec.input_gb / 2));
      for (int rb = 0; rb < record_batches; ++rb) {
        b.emit("map.records", {std::to_string(100000 + b.rng().uniform(900000))});
        if (b.rng().chance(0.3)) b.emit("map.report", {});
        if (spill_thread.rng().chance(0.4)) {
          spill_thread.emit("map.sort.buffer", {});
          spill_thread.emit("map.kvbuffer",
                            {std::to_string(spill_thread.rng().uniform(26214400)),
                             std::to_string(spill_thread.rng().uniform(26214400)),
                             std::to_string(spill_thread.rng().uniform(1000000))});
        }
        b.advance(200, 1200);
        spill_thread.advance(200, 1200);
      }
      b.absorb(std::move(spill_thread));
    }
    b.advance(500, 4000);
    if (spill_mode) {
      const int extra = 1 + static_cast<int>(b.rng().uniform(3));
      for (int s = 0; s < extra; ++s) {
        b.emit("map.spill.extra", {});
        b.emit("map.spill.finished", {std::to_string(s)});
        perf_affected = true;
      }
    }
    b.emit("map.flush", {});
    b.emit("map.spill.finished", {std::to_string(spill_mode ? 3 : 0)});
    b.emit("map.done", {attempt_id(m, false)});
    b.emit("map.commit.allowed", {attempt_id(m, false)});
    if (b.rng().chance(0.5)) b.emit("task.commit.go", {attempt_id(m, false)});
    b.emit("map.output.saved", {attempt_id(m, false),
                                "hdfs://master:9000/user/output/_temporary/" + std::to_string(m)});
    if (spec.container_memory_mb > spec.required_memory_mb() * 6 && b.rng().chance(0.002)) {
      b.emit("task.ping.retry", {});
    }
    b.emit("map.metrics.stop", {});
    finish_session(b, idx, fault_affected);
    if (fault_affected) result.affected_containers.insert(b.container_id());
    if (perf_affected) result.perf_affected_containers.insert(b.container_id());
    result.sessions.push_back(b.finish());
  }

  // ---- reducer sessions -------------------------------------------------------
  for (int r = 0; r < num_reducers; ++r) {
    const int idx = 1 + num_mappers + r;
    SessionBuilder b(corpus, container_id(2 + num_mappers + r),
                     cluster.node_name(placement[static_cast<std::size_t>(idx)]),
                     job_start + 4000 + rng.uniform(4000), rng.fork());
    const std::string node = b.node();
    bool fault_affected = false;
    b.emit("map.metrics.start", {});  // ReduceTask uses the same metrics bootstrap
    b.emit("red.plugin", {"org.apache.hadoop.mapreduce.task.reduce.Shuffle"});
    b.emit("red.merge.thread", {});
    b.emit("red.eventfetcher", {attempt_id(r, true)});
    b.emit("red.events.sleep", {std::to_string(500 + b.rng().uniform(1000))});

    // Parallel fetcher threads pull each mapper's output.
    const int num_fetchers = 4;
    std::vector<SessionBuilder> fetchers;
    for (int f = 0; f < num_fetchers; ++f) fetchers.push_back(b.fork(f * 11));
    const int fetch_count = std::min(num_mappers, 40 + static_cast<int>(rng.uniform(40)));
    for (int m = 0; m < fetch_count; ++m) {
      if (m % 12 == 0) {
        const std::string src =
            cluster.node_name(placement[static_cast<std::size_t>(1 + m)]) + ":13562";
        b.emit("red.fetch.schedule",
               {std::to_string(std::min(12, fetch_count - m)), src});
      }
      SessionBuilder& f = fetchers[static_cast<std::size_t>(m % num_fetchers)];
      // Fetcher thread numbering is unique across the job's reducers.
      const std::string fetcher_id = std::to_string(1 + r * num_fetchers + m % num_fetchers);
      const std::string map_attempt = attempt_id(m, false);
      const std::string source_host =
          cluster.node_name(placement[static_cast<std::size_t>(1 + m)]);
      const std::string source = source_host + ":13562";
      const bool fault_hit = (fault.kind == ProblemKind::NetworkFailure ||
                              fault.kind == ProblemKind::NodeFailure) &&
                             f.now() >= fault_time && source_host == fault_host;
      if (f.rng().chance(0.35)) {
        f.emit("red.fetch.assign",
               {source, std::to_string(1 + f.rng().uniform(6)), fetcher_id});
      }
      f.emit("red.fetch.about", {fetcher_id, map_attempt});
      if (f.rng().chance(0.3)) f.emit("red.fetch.verify", {map_attempt});
      if (fault_hit) {
        for (int att = 0; att < 2; ++att) {
          f.emit("red.fetch.fail",
                 {fetcher_id, source, std::to_string(1 + f.rng().uniform(4))},
                 /*injected=*/true);
          f.emit("red.fetch.retry", {fetcher_id, source, std::to_string(3000)},
                 /*injected=*/true);
        }
        fault_affected = true;
      } else {
        f.emit("red.fetch.read",
               {fetcher_id, std::to_string(1000 + f.rng().uniform(900000)), map_attempt});
        if (f.rng().chance(0.3)) {
          f.emit("red.inmem.shuffle", {std::to_string(1000 + f.rng().uniform(900000))});
        } else if (f.rng().chance(0.3)) {
          f.emit("red.ondisk.move", {});
        }
        if (f.rng().chance(0.25)) {
          f.emit("red.fetch.rate",
                 {std::to_string(1000 + f.rng().uniform(900000)), map_attempt,
                  std::to_string(100 + f.rng().uniform(40000))});
        }
        f.emit("red.fetch.freed",
               {source, fetcher_id, std::to_string(1 + f.rng().uniform(40))});
        f.emit("red.map.completed", {map_attempt});
      }
      f.advance(5, 60);
    }
    for (auto& f : fetchers) b.absorb(std::move(f));

    b.emit("red.merge.inmem", {std::to_string(8 + b.rng().uniform(56))});
    b.emit("red.merge.segments", {std::to_string(4 + b.rng().uniform(28))});
    if (b.rng().chance(0.6)) {
      b.emit("red.merge.satisfy", {std::to_string(2 + b.rng().uniform(10)),
                                   std::to_string(100000 + b.rng().uniform(10000000))});
    }
    b.emit("red.merge.last", {std::to_string(1 + b.rng().uniform(9)),
                              std::to_string(100000 + b.rng().uniform(90000000))});
    b.emit("red.phase", {});
    b.advance(1000, 9000);
    b.emit("map.done", {attempt_id(r, true)});
    b.emit("map.commit.allowed", {attempt_id(r, true)});
    b.emit("map.output.saved",
           {attempt_id(r, true), "hdfs://master:9000/user/output/part-r-" + std::to_string(r)});
    b.emit("red.executor.complete", {});
    b.emit("map.metrics.stop", {});
    finish_session(b, idx, fault_affected);
    if (fault_affected) result.affected_containers.insert(b.container_id());
    result.sessions.push_back(b.finish());
  }

  return result;
}

}  // namespace intellog::simsys
