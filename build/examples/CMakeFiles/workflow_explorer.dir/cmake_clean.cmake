file(REMOVE_RECURSE
  "CMakeFiles/workflow_explorer.dir/workflow_explorer.cpp.o"
  "CMakeFiles/workflow_explorer.dir/workflow_explorer.cpp.o.d"
  "workflow_explorer"
  "workflow_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
