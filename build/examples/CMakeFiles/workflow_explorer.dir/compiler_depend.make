# Empty compiler generated dependencies file for workflow_explorer.
# This may be replaced when dependencies are built.
