file(REMOVE_RECURSE
  "CMakeFiles/troubleshoot_network.dir/troubleshoot_network.cpp.o"
  "CMakeFiles/troubleshoot_network.dir/troubleshoot_network.cpp.o.d"
  "troubleshoot_network"
  "troubleshoot_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troubleshoot_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
