# Empty dependencies file for troubleshoot_network.
# This may be replaced when dependencies are built.
