# Empty compiler generated dependencies file for mlsys_extension.
# This may be replaced when dependencies are built.
