file(REMOVE_RECURSE
  "CMakeFiles/mlsys_extension.dir/mlsys_extension.cpp.o"
  "CMakeFiles/mlsys_extension.dir/mlsys_extension.cpp.o.d"
  "mlsys_extension"
  "mlsys_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlsys_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
