file(REMOVE_RECURSE
  "CMakeFiles/test_nlp.dir/nlp/test_camel_case.cpp.o"
  "CMakeFiles/test_nlp.dir/nlp/test_camel_case.cpp.o.d"
  "CMakeFiles/test_nlp.dir/nlp/test_dependency_parser.cpp.o"
  "CMakeFiles/test_nlp.dir/nlp/test_dependency_parser.cpp.o.d"
  "CMakeFiles/test_nlp.dir/nlp/test_hmm_tagger.cpp.o"
  "CMakeFiles/test_nlp.dir/nlp/test_hmm_tagger.cpp.o.d"
  "CMakeFiles/test_nlp.dir/nlp/test_lemmatizer.cpp.o"
  "CMakeFiles/test_nlp.dir/nlp/test_lemmatizer.cpp.o.d"
  "CMakeFiles/test_nlp.dir/nlp/test_lexicon.cpp.o"
  "CMakeFiles/test_nlp.dir/nlp/test_lexicon.cpp.o.d"
  "CMakeFiles/test_nlp.dir/nlp/test_pos_tagger.cpp.o"
  "CMakeFiles/test_nlp.dir/nlp/test_pos_tagger.cpp.o.d"
  "CMakeFiles/test_nlp.dir/nlp/test_tokenizer.cpp.o"
  "CMakeFiles/test_nlp.dir/nlp/test_tokenizer.cpp.o.d"
  "test_nlp"
  "test_nlp.pdb"
  "test_nlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
