
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nlp/test_camel_case.cpp" "tests/CMakeFiles/test_nlp.dir/nlp/test_camel_case.cpp.o" "gcc" "tests/CMakeFiles/test_nlp.dir/nlp/test_camel_case.cpp.o.d"
  "/root/repo/tests/nlp/test_dependency_parser.cpp" "tests/CMakeFiles/test_nlp.dir/nlp/test_dependency_parser.cpp.o" "gcc" "tests/CMakeFiles/test_nlp.dir/nlp/test_dependency_parser.cpp.o.d"
  "/root/repo/tests/nlp/test_hmm_tagger.cpp" "tests/CMakeFiles/test_nlp.dir/nlp/test_hmm_tagger.cpp.o" "gcc" "tests/CMakeFiles/test_nlp.dir/nlp/test_hmm_tagger.cpp.o.d"
  "/root/repo/tests/nlp/test_lemmatizer.cpp" "tests/CMakeFiles/test_nlp.dir/nlp/test_lemmatizer.cpp.o" "gcc" "tests/CMakeFiles/test_nlp.dir/nlp/test_lemmatizer.cpp.o.d"
  "/root/repo/tests/nlp/test_lexicon.cpp" "tests/CMakeFiles/test_nlp.dir/nlp/test_lexicon.cpp.o" "gcc" "tests/CMakeFiles/test_nlp.dir/nlp/test_lexicon.cpp.o.d"
  "/root/repo/tests/nlp/test_pos_tagger.cpp" "tests/CMakeFiles/test_nlp.dir/nlp/test_pos_tagger.cpp.o" "gcc" "tests/CMakeFiles/test_nlp.dir/nlp/test_pos_tagger.cpp.o.d"
  "/root/repo/tests/nlp/test_tokenizer.cpp" "tests/CMakeFiles/test_nlp.dir/nlp/test_tokenizer.cpp.o" "gcc" "tests/CMakeFiles/test_nlp.dir/nlp/test_tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/intellog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/intellog_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/logparse/CMakeFiles/intellog_logparse.dir/DependInfo.cmake"
  "/root/repo/build/src/simsys/CMakeFiles/intellog_simsys.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/intellog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/intellog_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
