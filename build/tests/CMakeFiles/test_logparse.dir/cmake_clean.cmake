file(REMOVE_RECURSE
  "CMakeFiles/test_logparse.dir/logparse/test_formatter.cpp.o"
  "CMakeFiles/test_logparse.dir/logparse/test_formatter.cpp.o.d"
  "CMakeFiles/test_logparse.dir/logparse/test_kv_filter.cpp.o"
  "CMakeFiles/test_logparse.dir/logparse/test_kv_filter.cpp.o.d"
  "CMakeFiles/test_logparse.dir/logparse/test_log_io.cpp.o"
  "CMakeFiles/test_logparse.dir/logparse/test_log_io.cpp.o.d"
  "CMakeFiles/test_logparse.dir/logparse/test_session.cpp.o"
  "CMakeFiles/test_logparse.dir/logparse/test_session.cpp.o.d"
  "CMakeFiles/test_logparse.dir/logparse/test_spell.cpp.o"
  "CMakeFiles/test_logparse.dir/logparse/test_spell.cpp.o.d"
  "test_logparse"
  "test_logparse.pdb"
  "test_logparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
