# Empty compiler generated dependencies file for test_logparse.
# This may be replaced when dependencies are built.
