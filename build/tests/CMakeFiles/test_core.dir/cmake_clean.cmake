file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_entity_grouping.cpp.o"
  "CMakeFiles/test_core.dir/core/test_entity_grouping.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_extraction.cpp.o"
  "CMakeFiles/test_core.dir/core/test_extraction.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_hw_graph.cpp.o"
  "CMakeFiles/test_core.dir/core/test_hw_graph.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_intellog.cpp.o"
  "CMakeFiles/test_core.dir/core/test_intellog.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_locality.cpp.o"
  "CMakeFiles/test_core.dir/core/test_locality.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_message_store.cpp.o"
  "CMakeFiles/test_core.dir/core/test_message_store.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_model_io.cpp.o"
  "CMakeFiles/test_core.dir/core/test_model_io.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_online.cpp.o"
  "CMakeFiles/test_core.dir/core/test_online.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pipeline_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pipeline_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_query.cpp.o"
  "CMakeFiles/test_core.dir/core/test_query.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_robustness.cpp.o"
  "CMakeFiles/test_core.dir/core/test_robustness.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scale.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scale.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_subroutine.cpp.o"
  "CMakeFiles/test_core.dir/core/test_subroutine.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
