
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_entity_grouping.cpp" "tests/CMakeFiles/test_core.dir/core/test_entity_grouping.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_entity_grouping.cpp.o.d"
  "/root/repo/tests/core/test_extraction.cpp" "tests/CMakeFiles/test_core.dir/core/test_extraction.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_extraction.cpp.o.d"
  "/root/repo/tests/core/test_hw_graph.cpp" "tests/CMakeFiles/test_core.dir/core/test_hw_graph.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hw_graph.cpp.o.d"
  "/root/repo/tests/core/test_intellog.cpp" "tests/CMakeFiles/test_core.dir/core/test_intellog.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_intellog.cpp.o.d"
  "/root/repo/tests/core/test_locality.cpp" "tests/CMakeFiles/test_core.dir/core/test_locality.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_locality.cpp.o.d"
  "/root/repo/tests/core/test_message_store.cpp" "tests/CMakeFiles/test_core.dir/core/test_message_store.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_message_store.cpp.o.d"
  "/root/repo/tests/core/test_model_io.cpp" "tests/CMakeFiles/test_core.dir/core/test_model_io.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_model_io.cpp.o.d"
  "/root/repo/tests/core/test_online.cpp" "tests/CMakeFiles/test_core.dir/core/test_online.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_online.cpp.o.d"
  "/root/repo/tests/core/test_pipeline_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_pipeline_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pipeline_properties.cpp.o.d"
  "/root/repo/tests/core/test_query.cpp" "tests/CMakeFiles/test_core.dir/core/test_query.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_query.cpp.o.d"
  "/root/repo/tests/core/test_robustness.cpp" "tests/CMakeFiles/test_core.dir/core/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_robustness.cpp.o.d"
  "/root/repo/tests/core/test_scale.cpp" "tests/CMakeFiles/test_core.dir/core/test_scale.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_scale.cpp.o.d"
  "/root/repo/tests/core/test_subroutine.cpp" "tests/CMakeFiles/test_core.dir/core/test_subroutine.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_subroutine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/intellog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/intellog_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/logparse/CMakeFiles/intellog_logparse.dir/DependInfo.cmake"
  "/root/repo/build/src/simsys/CMakeFiles/intellog_simsys.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/intellog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/intellog_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
