# Empty dependencies file for test_simsys.
# This may be replaced when dependencies are built.
