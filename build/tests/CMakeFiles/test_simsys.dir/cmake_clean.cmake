file(REMOVE_RECURSE
  "CMakeFiles/test_simsys.dir/simsys/test_simulators.cpp.o"
  "CMakeFiles/test_simsys.dir/simsys/test_simulators.cpp.o.d"
  "CMakeFiles/test_simsys.dir/simsys/test_templates.cpp.o"
  "CMakeFiles/test_simsys.dir/simsys/test_templates.cpp.o.d"
  "test_simsys"
  "test_simsys.pdb"
  "test_simsys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
