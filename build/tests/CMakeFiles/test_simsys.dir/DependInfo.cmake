
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simsys/test_simulators.cpp" "tests/CMakeFiles/test_simsys.dir/simsys/test_simulators.cpp.o" "gcc" "tests/CMakeFiles/test_simsys.dir/simsys/test_simulators.cpp.o.d"
  "/root/repo/tests/simsys/test_templates.cpp" "tests/CMakeFiles/test_simsys.dir/simsys/test_templates.cpp.o" "gcc" "tests/CMakeFiles/test_simsys.dir/simsys/test_templates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/intellog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/intellog_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/logparse/CMakeFiles/intellog_logparse.dir/DependInfo.cmake"
  "/root/repo/build/src/simsys/CMakeFiles/intellog_simsys.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/intellog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/intellog_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
