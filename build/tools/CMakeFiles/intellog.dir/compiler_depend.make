# Empty compiler generated dependencies file for intellog.
# This may be replaced when dependencies are built.
