file(REMOVE_RECURSE
  "CMakeFiles/intellog.dir/intellog_cli.cpp.o"
  "CMakeFiles/intellog.dir/intellog_cli.cpp.o.d"
  "intellog"
  "intellog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intellog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
