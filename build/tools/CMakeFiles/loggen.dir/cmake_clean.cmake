file(REMOVE_RECURSE
  "CMakeFiles/loggen.dir/loggen.cpp.o"
  "CMakeFiles/loggen.dir/loggen.cpp.o.d"
  "loggen"
  "loggen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loggen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
