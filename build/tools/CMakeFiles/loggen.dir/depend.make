# Empty dependencies file for loggen.
# This may be replaced when dependencies are built.
