# Empty compiler generated dependencies file for bench_fig9_stitch_s3.
# This may be replaced when dependencies are built.
