# Empty dependencies file for bench_fig8_spark_hwgraph.
# This may be replaced when dependencies are built.
