file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_spark_hwgraph.dir/bench_fig8_spark_hwgraph.cpp.o"
  "CMakeFiles/bench_fig8_spark_hwgraph.dir/bench_fig8_spark_hwgraph.cpp.o.d"
  "bench_fig8_spark_hwgraph"
  "bench_fig8_spark_hwgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_spark_hwgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
