# Empty dependencies file for bench_table5_hwgraph_stats.
# This may be replaced when dependencies are built.
