# Empty dependencies file for bench_table6_anomaly.
# This may be replaced when dependencies are built.
