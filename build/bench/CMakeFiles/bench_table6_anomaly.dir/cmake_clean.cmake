file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_anomaly.dir/bench_table6_anomaly.cpp.o"
  "CMakeFiles/bench_table6_anomaly.dir/bench_table6_anomaly.cpp.o.d"
  "bench_table6_anomaly"
  "bench_table6_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
