file(REMOVE_RECURSE
  "CMakeFiles/bench_infra_contrast.dir/bench_infra_contrast.cpp.o"
  "CMakeFiles/bench_infra_contrast.dir/bench_infra_contrast.cpp.o.d"
  "bench_infra_contrast"
  "bench_infra_contrast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_infra_contrast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
