# Empty dependencies file for bench_infra_contrast.
# This may be replaced when dependencies are built.
