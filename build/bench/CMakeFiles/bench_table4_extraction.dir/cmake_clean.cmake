file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_extraction.dir/bench_table4_extraction.cpp.o"
  "CMakeFiles/bench_table4_extraction.dir/bench_table4_extraction.cpp.o.d"
  "bench_table4_extraction"
  "bench_table4_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
