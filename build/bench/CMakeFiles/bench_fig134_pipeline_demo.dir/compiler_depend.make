# Empty compiler generated dependencies file for bench_fig134_pipeline_demo.
# This may be replaced when dependencies are built.
