file(REMOVE_RECURSE
  "CMakeFiles/bench_fig134_pipeline_demo.dir/bench_fig134_pipeline_demo.cpp.o"
  "CMakeFiles/bench_fig134_pipeline_demo.dir/bench_fig134_pipeline_demo.cpp.o.d"
  "bench_fig134_pipeline_demo"
  "bench_fig134_pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig134_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
