
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logparse/formatter.cpp" "src/logparse/CMakeFiles/intellog_logparse.dir/formatter.cpp.o" "gcc" "src/logparse/CMakeFiles/intellog_logparse.dir/formatter.cpp.o.d"
  "/root/repo/src/logparse/kv_filter.cpp" "src/logparse/CMakeFiles/intellog_logparse.dir/kv_filter.cpp.o" "gcc" "src/logparse/CMakeFiles/intellog_logparse.dir/kv_filter.cpp.o.d"
  "/root/repo/src/logparse/log_io.cpp" "src/logparse/CMakeFiles/intellog_logparse.dir/log_io.cpp.o" "gcc" "src/logparse/CMakeFiles/intellog_logparse.dir/log_io.cpp.o.d"
  "/root/repo/src/logparse/session.cpp" "src/logparse/CMakeFiles/intellog_logparse.dir/session.cpp.o" "gcc" "src/logparse/CMakeFiles/intellog_logparse.dir/session.cpp.o.d"
  "/root/repo/src/logparse/spell.cpp" "src/logparse/CMakeFiles/intellog_logparse.dir/spell.cpp.o" "gcc" "src/logparse/CMakeFiles/intellog_logparse.dir/spell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/intellog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/intellog_nlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
