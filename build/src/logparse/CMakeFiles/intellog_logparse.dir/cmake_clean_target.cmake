file(REMOVE_RECURSE
  "libintellog_logparse.a"
)
