# Empty dependencies file for intellog_logparse.
# This may be replaced when dependencies are built.
