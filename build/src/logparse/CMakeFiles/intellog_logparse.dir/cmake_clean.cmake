file(REMOVE_RECURSE
  "CMakeFiles/intellog_logparse.dir/formatter.cpp.o"
  "CMakeFiles/intellog_logparse.dir/formatter.cpp.o.d"
  "CMakeFiles/intellog_logparse.dir/kv_filter.cpp.o"
  "CMakeFiles/intellog_logparse.dir/kv_filter.cpp.o.d"
  "CMakeFiles/intellog_logparse.dir/log_io.cpp.o"
  "CMakeFiles/intellog_logparse.dir/log_io.cpp.o.d"
  "CMakeFiles/intellog_logparse.dir/session.cpp.o"
  "CMakeFiles/intellog_logparse.dir/session.cpp.o.d"
  "CMakeFiles/intellog_logparse.dir/spell.cpp.o"
  "CMakeFiles/intellog_logparse.dir/spell.cpp.o.d"
  "libintellog_logparse.a"
  "libintellog_logparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intellog_logparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
