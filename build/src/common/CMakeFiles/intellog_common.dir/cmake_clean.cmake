file(REMOVE_RECURSE
  "CMakeFiles/intellog_common.dir/json.cpp.o"
  "CMakeFiles/intellog_common.dir/json.cpp.o.d"
  "CMakeFiles/intellog_common.dir/matrix.cpp.o"
  "CMakeFiles/intellog_common.dir/matrix.cpp.o.d"
  "CMakeFiles/intellog_common.dir/rng.cpp.o"
  "CMakeFiles/intellog_common.dir/rng.cpp.o.d"
  "CMakeFiles/intellog_common.dir/strings.cpp.o"
  "CMakeFiles/intellog_common.dir/strings.cpp.o.d"
  "CMakeFiles/intellog_common.dir/table.cpp.o"
  "CMakeFiles/intellog_common.dir/table.cpp.o.d"
  "CMakeFiles/intellog_common.dir/thread_pool.cpp.o"
  "CMakeFiles/intellog_common.dir/thread_pool.cpp.o.d"
  "libintellog_common.a"
  "libintellog_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intellog_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
