# Empty compiler generated dependencies file for intellog_common.
# This may be replaced when dependencies are built.
