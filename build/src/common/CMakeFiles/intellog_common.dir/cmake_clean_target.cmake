file(REMOVE_RECURSE
  "libintellog_common.a"
)
