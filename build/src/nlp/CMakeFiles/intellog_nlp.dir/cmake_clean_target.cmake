file(REMOVE_RECURSE
  "libintellog_nlp.a"
)
