
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/camel_case.cpp" "src/nlp/CMakeFiles/intellog_nlp.dir/camel_case.cpp.o" "gcc" "src/nlp/CMakeFiles/intellog_nlp.dir/camel_case.cpp.o.d"
  "/root/repo/src/nlp/dependency_parser.cpp" "src/nlp/CMakeFiles/intellog_nlp.dir/dependency_parser.cpp.o" "gcc" "src/nlp/CMakeFiles/intellog_nlp.dir/dependency_parser.cpp.o.d"
  "/root/repo/src/nlp/hmm_tagger.cpp" "src/nlp/CMakeFiles/intellog_nlp.dir/hmm_tagger.cpp.o" "gcc" "src/nlp/CMakeFiles/intellog_nlp.dir/hmm_tagger.cpp.o.d"
  "/root/repo/src/nlp/lemmatizer.cpp" "src/nlp/CMakeFiles/intellog_nlp.dir/lemmatizer.cpp.o" "gcc" "src/nlp/CMakeFiles/intellog_nlp.dir/lemmatizer.cpp.o.d"
  "/root/repo/src/nlp/lexicon.cpp" "src/nlp/CMakeFiles/intellog_nlp.dir/lexicon.cpp.o" "gcc" "src/nlp/CMakeFiles/intellog_nlp.dir/lexicon.cpp.o.d"
  "/root/repo/src/nlp/pos_tagger.cpp" "src/nlp/CMakeFiles/intellog_nlp.dir/pos_tagger.cpp.o" "gcc" "src/nlp/CMakeFiles/intellog_nlp.dir/pos_tagger.cpp.o.d"
  "/root/repo/src/nlp/token.cpp" "src/nlp/CMakeFiles/intellog_nlp.dir/token.cpp.o" "gcc" "src/nlp/CMakeFiles/intellog_nlp.dir/token.cpp.o.d"
  "/root/repo/src/nlp/tokenizer.cpp" "src/nlp/CMakeFiles/intellog_nlp.dir/tokenizer.cpp.o" "gcc" "src/nlp/CMakeFiles/intellog_nlp.dir/tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/intellog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
