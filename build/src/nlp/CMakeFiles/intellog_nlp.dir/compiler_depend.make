# Empty compiler generated dependencies file for intellog_nlp.
# This may be replaced when dependencies are built.
