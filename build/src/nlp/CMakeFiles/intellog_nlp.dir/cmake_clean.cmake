file(REMOVE_RECURSE
  "CMakeFiles/intellog_nlp.dir/camel_case.cpp.o"
  "CMakeFiles/intellog_nlp.dir/camel_case.cpp.o.d"
  "CMakeFiles/intellog_nlp.dir/dependency_parser.cpp.o"
  "CMakeFiles/intellog_nlp.dir/dependency_parser.cpp.o.d"
  "CMakeFiles/intellog_nlp.dir/hmm_tagger.cpp.o"
  "CMakeFiles/intellog_nlp.dir/hmm_tagger.cpp.o.d"
  "CMakeFiles/intellog_nlp.dir/lemmatizer.cpp.o"
  "CMakeFiles/intellog_nlp.dir/lemmatizer.cpp.o.d"
  "CMakeFiles/intellog_nlp.dir/lexicon.cpp.o"
  "CMakeFiles/intellog_nlp.dir/lexicon.cpp.o.d"
  "CMakeFiles/intellog_nlp.dir/pos_tagger.cpp.o"
  "CMakeFiles/intellog_nlp.dir/pos_tagger.cpp.o.d"
  "CMakeFiles/intellog_nlp.dir/token.cpp.o"
  "CMakeFiles/intellog_nlp.dir/token.cpp.o.d"
  "CMakeFiles/intellog_nlp.dir/tokenizer.cpp.o"
  "CMakeFiles/intellog_nlp.dir/tokenizer.cpp.o.d"
  "libintellog_nlp.a"
  "libintellog_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intellog_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
