file(REMOVE_RECURSE
  "CMakeFiles/intellog_simsys.dir/event_sim.cpp.o"
  "CMakeFiles/intellog_simsys.dir/event_sim.cpp.o.d"
  "CMakeFiles/intellog_simsys.dir/mapreduce_system.cpp.o"
  "CMakeFiles/intellog_simsys.dir/mapreduce_system.cpp.o.d"
  "CMakeFiles/intellog_simsys.dir/spark_system.cpp.o"
  "CMakeFiles/intellog_simsys.dir/spark_system.cpp.o.d"
  "CMakeFiles/intellog_simsys.dir/template_corpus.cpp.o"
  "CMakeFiles/intellog_simsys.dir/template_corpus.cpp.o.d"
  "CMakeFiles/intellog_simsys.dir/tensorflow_system.cpp.o"
  "CMakeFiles/intellog_simsys.dir/tensorflow_system.cpp.o.d"
  "CMakeFiles/intellog_simsys.dir/tez_system.cpp.o"
  "CMakeFiles/intellog_simsys.dir/tez_system.cpp.o.d"
  "CMakeFiles/intellog_simsys.dir/workload.cpp.o"
  "CMakeFiles/intellog_simsys.dir/workload.cpp.o.d"
  "CMakeFiles/intellog_simsys.dir/yarn_system.cpp.o"
  "CMakeFiles/intellog_simsys.dir/yarn_system.cpp.o.d"
  "libintellog_simsys.a"
  "libintellog_simsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intellog_simsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
