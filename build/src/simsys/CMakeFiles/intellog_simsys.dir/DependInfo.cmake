
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simsys/event_sim.cpp" "src/simsys/CMakeFiles/intellog_simsys.dir/event_sim.cpp.o" "gcc" "src/simsys/CMakeFiles/intellog_simsys.dir/event_sim.cpp.o.d"
  "/root/repo/src/simsys/mapreduce_system.cpp" "src/simsys/CMakeFiles/intellog_simsys.dir/mapreduce_system.cpp.o" "gcc" "src/simsys/CMakeFiles/intellog_simsys.dir/mapreduce_system.cpp.o.d"
  "/root/repo/src/simsys/spark_system.cpp" "src/simsys/CMakeFiles/intellog_simsys.dir/spark_system.cpp.o" "gcc" "src/simsys/CMakeFiles/intellog_simsys.dir/spark_system.cpp.o.d"
  "/root/repo/src/simsys/template_corpus.cpp" "src/simsys/CMakeFiles/intellog_simsys.dir/template_corpus.cpp.o" "gcc" "src/simsys/CMakeFiles/intellog_simsys.dir/template_corpus.cpp.o.d"
  "/root/repo/src/simsys/tensorflow_system.cpp" "src/simsys/CMakeFiles/intellog_simsys.dir/tensorflow_system.cpp.o" "gcc" "src/simsys/CMakeFiles/intellog_simsys.dir/tensorflow_system.cpp.o.d"
  "/root/repo/src/simsys/tez_system.cpp" "src/simsys/CMakeFiles/intellog_simsys.dir/tez_system.cpp.o" "gcc" "src/simsys/CMakeFiles/intellog_simsys.dir/tez_system.cpp.o.d"
  "/root/repo/src/simsys/workload.cpp" "src/simsys/CMakeFiles/intellog_simsys.dir/workload.cpp.o" "gcc" "src/simsys/CMakeFiles/intellog_simsys.dir/workload.cpp.o.d"
  "/root/repo/src/simsys/yarn_system.cpp" "src/simsys/CMakeFiles/intellog_simsys.dir/yarn_system.cpp.o" "gcc" "src/simsys/CMakeFiles/intellog_simsys.dir/yarn_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/intellog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/logparse/CMakeFiles/intellog_logparse.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/intellog_nlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
