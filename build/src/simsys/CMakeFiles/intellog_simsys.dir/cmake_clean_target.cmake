file(REMOVE_RECURSE
  "libintellog_simsys.a"
)
