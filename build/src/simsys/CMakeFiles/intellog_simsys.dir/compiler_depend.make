# Empty compiler generated dependencies file for intellog_simsys.
# This may be replaced when dependencies are built.
