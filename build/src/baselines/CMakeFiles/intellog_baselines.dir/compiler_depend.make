# Empty compiler generated dependencies file for intellog_baselines.
# This may be replaced when dependencies are built.
