
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/deeplog.cpp" "src/baselines/CMakeFiles/intellog_baselines.dir/deeplog.cpp.o" "gcc" "src/baselines/CMakeFiles/intellog_baselines.dir/deeplog.cpp.o.d"
  "/root/repo/src/baselines/logcluster.cpp" "src/baselines/CMakeFiles/intellog_baselines.dir/logcluster.cpp.o" "gcc" "src/baselines/CMakeFiles/intellog_baselines.dir/logcluster.cpp.o.d"
  "/root/repo/src/baselines/lstm.cpp" "src/baselines/CMakeFiles/intellog_baselines.dir/lstm.cpp.o" "gcc" "src/baselines/CMakeFiles/intellog_baselines.dir/lstm.cpp.o.d"
  "/root/repo/src/baselines/stitch.cpp" "src/baselines/CMakeFiles/intellog_baselines.dir/stitch.cpp.o" "gcc" "src/baselines/CMakeFiles/intellog_baselines.dir/stitch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/intellog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/intellog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/logparse/CMakeFiles/intellog_logparse.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/intellog_nlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
