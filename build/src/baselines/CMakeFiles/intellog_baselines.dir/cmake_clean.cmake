file(REMOVE_RECURSE
  "CMakeFiles/intellog_baselines.dir/deeplog.cpp.o"
  "CMakeFiles/intellog_baselines.dir/deeplog.cpp.o.d"
  "CMakeFiles/intellog_baselines.dir/logcluster.cpp.o"
  "CMakeFiles/intellog_baselines.dir/logcluster.cpp.o.d"
  "CMakeFiles/intellog_baselines.dir/lstm.cpp.o"
  "CMakeFiles/intellog_baselines.dir/lstm.cpp.o.d"
  "CMakeFiles/intellog_baselines.dir/stitch.cpp.o"
  "CMakeFiles/intellog_baselines.dir/stitch.cpp.o.d"
  "libintellog_baselines.a"
  "libintellog_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intellog_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
