file(REMOVE_RECURSE
  "libintellog_baselines.a"
)
