file(REMOVE_RECURSE
  "libintellog_core.a"
)
