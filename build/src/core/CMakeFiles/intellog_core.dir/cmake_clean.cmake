file(REMOVE_RECURSE
  "CMakeFiles/intellog_core.dir/anomaly.cpp.o"
  "CMakeFiles/intellog_core.dir/anomaly.cpp.o.d"
  "CMakeFiles/intellog_core.dir/entity_grouping.cpp.o"
  "CMakeFiles/intellog_core.dir/entity_grouping.cpp.o.d"
  "CMakeFiles/intellog_core.dir/extraction.cpp.o"
  "CMakeFiles/intellog_core.dir/extraction.cpp.o.d"
  "CMakeFiles/intellog_core.dir/hw_graph.cpp.o"
  "CMakeFiles/intellog_core.dir/hw_graph.cpp.o.d"
  "CMakeFiles/intellog_core.dir/intel_key.cpp.o"
  "CMakeFiles/intellog_core.dir/intel_key.cpp.o.d"
  "CMakeFiles/intellog_core.dir/intellog.cpp.o"
  "CMakeFiles/intellog_core.dir/intellog.cpp.o.d"
  "CMakeFiles/intellog_core.dir/locality.cpp.o"
  "CMakeFiles/intellog_core.dir/locality.cpp.o.d"
  "CMakeFiles/intellog_core.dir/message_store.cpp.o"
  "CMakeFiles/intellog_core.dir/message_store.cpp.o.d"
  "CMakeFiles/intellog_core.dir/model_io.cpp.o"
  "CMakeFiles/intellog_core.dir/model_io.cpp.o.d"
  "CMakeFiles/intellog_core.dir/online.cpp.o"
  "CMakeFiles/intellog_core.dir/online.cpp.o.d"
  "CMakeFiles/intellog_core.dir/query.cpp.o"
  "CMakeFiles/intellog_core.dir/query.cpp.o.d"
  "CMakeFiles/intellog_core.dir/subroutine.cpp.o"
  "CMakeFiles/intellog_core.dir/subroutine.cpp.o.d"
  "libintellog_core.a"
  "libintellog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intellog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
