# Empty compiler generated dependencies file for intellog_core.
# This may be replaced when dependencies are built.
