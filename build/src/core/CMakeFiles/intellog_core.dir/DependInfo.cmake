
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly.cpp" "src/core/CMakeFiles/intellog_core.dir/anomaly.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/anomaly.cpp.o.d"
  "/root/repo/src/core/entity_grouping.cpp" "src/core/CMakeFiles/intellog_core.dir/entity_grouping.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/entity_grouping.cpp.o.d"
  "/root/repo/src/core/extraction.cpp" "src/core/CMakeFiles/intellog_core.dir/extraction.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/extraction.cpp.o.d"
  "/root/repo/src/core/hw_graph.cpp" "src/core/CMakeFiles/intellog_core.dir/hw_graph.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/hw_graph.cpp.o.d"
  "/root/repo/src/core/intel_key.cpp" "src/core/CMakeFiles/intellog_core.dir/intel_key.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/intel_key.cpp.o.d"
  "/root/repo/src/core/intellog.cpp" "src/core/CMakeFiles/intellog_core.dir/intellog.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/intellog.cpp.o.d"
  "/root/repo/src/core/locality.cpp" "src/core/CMakeFiles/intellog_core.dir/locality.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/locality.cpp.o.d"
  "/root/repo/src/core/message_store.cpp" "src/core/CMakeFiles/intellog_core.dir/message_store.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/message_store.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/intellog_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/intellog_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/online.cpp.o.d"
  "/root/repo/src/core/query.cpp" "src/core/CMakeFiles/intellog_core.dir/query.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/query.cpp.o.d"
  "/root/repo/src/core/subroutine.cpp" "src/core/CMakeFiles/intellog_core.dir/subroutine.cpp.o" "gcc" "src/core/CMakeFiles/intellog_core.dir/subroutine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/intellog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/intellog_nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/logparse/CMakeFiles/intellog_logparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
