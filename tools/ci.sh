#!/usr/bin/env bash
# Tier-1 verification: build + run the full test suite in Release, then
# again under ASan/UBSan, then a bench smoke run that guards the detection
# path's throughput. Run from anywhere; builds land in build-ci-*.
#
#   tools/ci.sh            # all stages
#   tools/ci.sh release    # Release build + tests + bench smoke
#   tools/ci.sh asan       # sanitizers only
#   tools/ci.sh bench      # bench smoke only (builds Release if needed)
#   tools/ci.sh chaos      # corrupted-stream soak under ASan (3 seeds)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
mode="${1:-all}"

generator=()
command -v ninja >/dev/null 2>&1 && generator=(-G Ninja)

run_config() {
  local name="$1"; shift
  local dir="$repo/build-ci-$name"
  echo "==> [$name] configure"
  cmake -B "$dir" -S "$repo" "${generator[@]}" "$@"
  echo "==> [$name] build"
  cmake --build "$dir" -j "$jobs"
  echo "==> [$name] ctest"
  ctest --test-dir "$dir" -j "$jobs" --output-on-failure
}

# Bench smoke: run bench_micro_pipeline's harness section (the google
# micro loops are filtered out for speed) and fail on a >30% drop in the
# headline Spell-match throughput vs the committed BENCH_micro_pipeline.json
# baseline. Regenerate the baseline by copying the fresh JSON over the
# committed one when a change legitimately moves the number.
bench_smoke() {
  local dir="$repo/build-ci-release"
  [[ -x "$dir/bench/bench_micro_pipeline" ]] || run_config release -DCMAKE_BUILD_TYPE=Release
  local out
  out="$(mktemp -d)"
  echo "==> [bench] smoke run (bench_micro_pipeline harness section)"
  INTELLOG_BENCH_DIR="$out" "$dir/bench/bench_micro_pipeline" \
    --benchmark_filter='DISABLED_none' >/dev/null 2>&1 || {
      echo "bench smoke: bench_micro_pipeline failed to run" >&2; exit 1; }
  local baseline="$repo/BENCH_micro_pipeline.json"
  if [[ ! -f "$baseline" ]]; then
    echo "bench smoke: no committed baseline at $baseline; skipping comparison"
    return 0
  fi
  python3 - "$baseline" "$out/BENCH_micro_pipeline.json" <<'PY'
import json, sys
base = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))
old, new = base["throughput_per_s"], fresh["throughput_per_s"]
ratio = new / old if old else float("inf")
print(f"bench smoke: spell match {new:,.0f} rec/s vs baseline {old:,.0f} rec/s "
      f"({ratio:.2f}x)")
if ratio < 0.70:
    print("bench smoke: FAIL — >30% throughput regression", file=sys.stderr)
    sys.exit(1)
# Hardened-ingestion guard: the resilient parser targets ~10% overhead vs
# the plain parser on clean input (order-alternated interleaved pairs,
# median of per-pair ratios, so clock drift cancels out); the gate sits at
# 20% to stay deterministic on small/shared CI runners where run-to-run
# scheduling noise alone moves the ratio a few percent.
ingest = fresh.get("extra", {}).get("ingest_resilient_ratio")
if ingest is not None:
    print(f"bench smoke: resilient ingest at {ingest:.2f}x of plain parse on clean input")
    if ingest < 0.80:
        print("bench smoke: FAIL — hardened ingestion costs >20% on clean input",
              file=sys.stderr)
        sys.exit(1)
PY
}

# Chaos smoke: the seeded log-stream corruptor + hardened-ingestion soak
# (tools/chaos_soak), run under the ASan/UBSan build. Fails on any crash,
# leak, sanitizer report, or invariant violation — intact lines quarantined,
# kill-and-resume report divergence, duplicates-only parity break, or a
# session/record cap overrun.
chaos_smoke() {
  local dir="$repo/build-ci-asan"
  [[ -x "$dir/tools/chaos_soak" ]] || run_config asan \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  echo "==> [chaos] corrupted-stream soak (3 seeds, ASan/UBSan)"
  local tmp seed
  tmp="$(mktemp -d)"
  for seed in 1 2 3; do
    ASAN_OPTIONS=detect_leaks=1 "$dir/tools/chaos_soak" \
        --seed "$seed" --workdir "$tmp/soak_$seed" || {
      echo "chaos smoke: FAIL — seed $seed (see CHAOS VIOLATION lines above)" >&2
      exit 1
    }
  done
  rm -rf "$tmp"
}

case "$mode" in
  release|all)
    run_config release -DCMAKE_BUILD_TYPE=Release
    ;;&
  asan|all)
    run_config asan \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
    ;;&
  chaos|all)
    chaos_smoke
    ;;&
  release|bench|all)
    bench_smoke
    ;;&
  release|asan|bench|chaos|all) ;;
  *)
    echo "usage: $0 [release|asan|bench|chaos|all]" >&2
    exit 2
    ;;
esac

echo "==> ci.sh OK ($mode)"
