#!/usr/bin/env bash
# Tier-1 verification: build + run the full test suite in Release, then
# again under ASan/UBSan, then a bench smoke run that guards the detection
# path's throughput. Run from anywhere; builds land in build-ci-*.
#
#   tools/ci.sh            # all stages
#   tools/ci.sh release    # Release build + tests + bench smoke
#   tools/ci.sh asan       # sanitizers only
#   tools/ci.sh bench      # bench smoke only (builds Release if needed)
#   tools/ci.sh chaos      # corrupted-stream soak under ASan (3 seeds)
#   tools/ci.sh serve      # multi-tenant daemon soak under ASan (3 seeds)
#                          # + CLI serve end-to-end with status validation
#   tools/ci.sh http       # live admin-plane smoke (Release + ASan/UBSan):
#                          # endpoint validation, e2e-latency SLO series,
#                          # breaker-driven /readyz flip and recovery
#   tools/ci.sh flight     # black-box recorder crash drill: SIGSEGV a live
#                          # daemon, decode + validate the post-mortem dump
#   tools/ci.sh observatory # end-to-end trace-export/explain/status checks
#   tools/ci.sh quality    # seeded score round-trip, coverage + drift gates
#   tools/ci.sh profile    # sampling-profiler smoke (Release + ASan/UBSan)
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
mode="${1:-all}"

generator=()
command -v ninja >/dev/null 2>&1 && generator=(-G Ninja)

run_config() {
  local name="$1"; shift
  local dir="$repo/build-ci-$name"
  echo "==> [$name] configure"
  cmake -B "$dir" -S "$repo" "${generator[@]}" "$@"
  echo "==> [$name] build"
  cmake --build "$dir" -j "$jobs"
  echo "==> [$name] ctest"
  # Under the sanitizer config the arenas poison freed regions on every
  # reset (0xCD scribble + ASan shadow poisoning), so any read of stale
  # arena bytes — a view that outlived its session — dies loudly here
  # instead of flaking in production.
  local ctest_env=()
  [[ "$name" == asan ]] && ctest_env=(INTELLOG_ARENA_POISON=1)
  env "${ctest_env[@]}" ctest --test-dir "$dir" -j "$jobs" --output-on-failure
}

# Bench smoke: run bench_micro_pipeline's harness section (the google
# micro loops are filtered out for speed) and gate the fresh snapshot with
# tools/compare_bench.py against the committed BENCH_micro_pipeline.json
# baseline. Regenerate the baseline by copying the fresh JSON over the
# committed one when a change legitimately moves the numbers.
#
# Gates (tolerances chosen for small/shared CI runners, where scheduling
# noise alone moves ratios a few percent):
#   throughput_per_s >= 0.70x baseline  headline Spell-match throughput
#   ingest_resilient_ratio >= 0.80      hardened ingest vs plain parse
#   evidence_overhead_ratio <= 1.05     evidence construction on detect
#   coverage_overhead_ratio <= 1.08     coverage ledger stamping on detect
#                                       (the arena rewrite made the detect
#                                       loop ~2.4x faster, so the ledger's
#                                       fixed integer-stamping cost is a
#                                       larger fraction — 1.05 started
#                                       flaking at exactly the bound)
#   profiler_overhead_ratio <= 1.10     detect under a live sampling profiler
#   scrape_overhead_ratio <= 1.05       detect while a 10 Hz client scrapes
#                                       /metrics off the embedded HTTP server
#   profiler_disabled_ratio in 0.90..1.10  noise floor: uninstalled PROF_FRAME
#                                       annotations must cost ~nothing
#   flight_overhead_ratio <= 1.05       detect_batch with the flight
#                                       recorder journaling vs off
#   flight_disabled_ratio in 0.90..1.10 noise floor: a disabled FLIGHT_EVENT
#                                       must stay one relaxed load + branch
#   ingest_mmap/ingest_getline >= 1.8   zero-copy mmap+SWAR file ingest vs
#                                       the getline+owning-parse pipeline it
#                                       replaced (measured ~2.3x; headroom
#                                       for scheduling noise)
#   detect_allocs_per_record <= 10      arena-backed detect hot path (the
#                                       pre-arena pipeline paid ~50; ~6.5
#                                       after the rewrite)
# The overhead ratios are order-alternated interleaved-pair medians, and
# the mmap/getline and alloc gates compare two fresh measurements, so all
# of them are self-relative and need no baseline entry to be meaningful.
bench_smoke() {
  local dir="$repo/build-ci-release"
  if [[ -x "$dir/bench/bench_micro_pipeline" ]]; then
    # Incremental rebuild so a standalone `ci.sh bench` never measures a
    # binary staler than the working tree (full run_config would re-ctest).
    cmake --build "$dir" -j "$jobs" --target bench_micro_pipeline
  else
    run_config release -DCMAKE_BUILD_TYPE=Release
  fi
  local out
  out="$(mktemp -d)"
  echo "==> [bench] smoke run (bench_micro_pipeline harness section)"
  INTELLOG_BENCH_DIR="$out" "$dir/bench/bench_micro_pipeline" \
    --benchmark_filter='DISABLED_none' >/dev/null 2>&1 || {
      echo "bench smoke: bench_micro_pipeline failed to run" >&2; exit 1; }
  local baseline="$repo/BENCH_micro_pipeline.json"
  if [[ ! -f "$baseline" ]]; then
    echo "bench smoke: no committed baseline at $baseline; skipping comparison"
    return 0
  fi
  python3 "$repo/tools/compare_bench.py" "$baseline" "$out/BENCH_micro_pipeline.json" \
    --ratio-min throughput_per_s=0.70 \
    --extra-min ingest_resilient_ratio=0.80 \
    --extra-max evidence_overhead_ratio=1.05 \
    --extra-max coverage_overhead_ratio=1.08 \
    --extra-max profiler_overhead_ratio=1.10 \
    --extra-range profiler_disabled_ratio=0.90:1.10 \
    --extra-max flight_overhead_ratio=1.05 \
    --extra-range flight_disabled_ratio=0.90:1.10 \
    --extra-ratio-min ingest_mmap_lines_per_s/ingest_getline_lines_per_s=1.8 \
    --extra-max detect_allocs_per_record=10 \
    --extra-max scrape_overhead_ratio=1.05
}

# Profile smoke: the Performance Observatory end to end through the CLI.
# A seeded spark workload is trained and then detected with `--profile`
# (and once through the `intellog profile` wrapper); the collapsed-stack /
# pprof artifacts must pass the strict profile validator — well-formed
# frame paths spanning ingest/spell/extract/detect, self counters summing
# exactly to the totals, and alloc bytes attributed across >= 5 frames.
# Runs in both the Release and the ASan/UBSan build: under sanitizers the
# operator-new replacement is not linked (the runtime owns operator new)
# and attribution must flow through the sanitizer's malloc hooks instead —
# this stage pins that both paths produce valid, balanced artifacts.
profile_smoke() {
  local name="$1"
  local dir="$repo/build-ci-$name"
  if [[ ! -x "$dir/tools/intellog" ]]; then
    if [[ "$name" == asan ]]; then
      run_config asan \
        -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
    else
      run_config release -DCMAKE_BUILD_TYPE=Release
    fi
  fi
  echo "==> [profile:$name] seeded profiler smoke"
  local tmp rc
  tmp="$(mktemp -d)"
  "$dir/tools/loggen" "$tmp/jobs" --system spark --jobs 20 --seed 11 >/dev/null
  mkdir -p "$tmp/logs"
  cp "$tmp"/jobs/job_*/*.log "$tmp/logs/"
  "$dir/tools/intellog" train "$tmp/logs" -o "$tmp/model.json" >/dev/null 2>&1

  # A 50us sample period keeps the short seeded run statistically useful
  # (thousands of sampler ticks) while staying far from sampler saturation.
  rc=0
  INTELLOG_PROF_PERIOD_US=50 "$dir/tools/intellog" detect "$tmp/logs" \
      -m "$tmp/model.json" --jobs 2 --profile "$tmp/prof" >/dev/null 2>&1 || rc=$?
  [[ $rc -eq 0 || $rc -eq 3 ]] || {
    echo "profile smoke: FAIL — detect --profile exited $rc" >&2; exit 1; }
  python3 "$repo/tools/validate_observatory.py" profile "$tmp/prof" || {
    echo "profile smoke: FAIL — artifact validation ($name)" >&2; exit 1; }

  # The wrapper spelling must produce the same artifact set.
  INTELLOG_PROF_PERIOD_US=50 "$dir/tools/intellog" profile -o "$tmp/wrap" \
      train "$tmp/logs" -o "$tmp/model2.json" >/dev/null 2>&1 || {
    echo "profile smoke: FAIL — intellog profile wrapper" >&2; exit 1; }
  [[ -s "$tmp/wrap" && -s "$tmp/wrap.alloc" && -s "$tmp/wrap.pprof.json" ]] || {
    echo "profile smoke: FAIL — wrapper artifacts missing" >&2; exit 1; }
  rm -rf "$tmp"
  echo "profile smoke: OK ($name)"
}

# Observatory smoke: a seeded end-to-end run through the CLI per system —
# train on clean jobs, export the HW-graph span trees and validate them
# with a strict parser (whole-file json.loads: trailing garbage is a
# failure), require >= 1 lifespan span per entity-group track, detect a
# faulty run and require every finding to carry evidence lines with
# file/line/byte-offset provenance, round-trip the report through
# `intellog explain`, and validate the --status-file snapshot schema.
observatory_smoke() {
  local dir="$repo/build-ci-release"
  [[ -x "$dir/tools/intellog" ]] || run_config release -DCMAKE_BUILD_TYPE=Release
  echo "==> [observatory] seeded export/explain/status validation"
  local tmp sys rc
  tmp="$(mktemp -d)"
  for sys in spark mapreduce tez; do
    "$dir/tools/loggen" "$tmp/$sys/train" --system "$sys" --jobs 3 --seed 7 >/dev/null
    "$dir/tools/loggen" "$tmp/$sys/clean" --system "$sys" --jobs 1 --seed 99 >/dev/null
    "$dir/tools/loggen" "$tmp/$sys/faulty" --system "$sys" --jobs 2 --seed 99 \
        --fault network >/dev/null
    "$dir/tools/intellog" train "$tmp/$sys/train" -o "$tmp/$sys/model.json" >/dev/null

    "$dir/tools/intellog" export-trace "$tmp/$sys/clean" -m "$tmp/$sys/model.json" \
        -o "$tmp/$sys/trace.json" --otlp "$tmp/$sys/otlp.json"

    rc=0
    "$dir/tools/intellog" detect "$tmp/$sys/faulty" -m "$tmp/$sys/model.json" --json \
        > "$tmp/$sys/report.json" || rc=$?
    [[ $rc -eq 0 || $rc -eq 3 ]] || {
      echo "observatory smoke: FAIL — detect exited $rc for $sys" >&2; exit 1; }

    # The explain round-trip re-renders the saved JSON report (exit 3 =
    # anomalies explained; anything else is a failure).
    rc=0
    "$dir/tools/intellog" explain "$tmp/$sys/report.json" \
        > "$tmp/$sys/explain.txt" || rc=$?
    [[ $rc -eq 0 || $rc -eq 3 ]] || {
      echo "observatory smoke: FAIL — explain exited $rc for $sys" >&2; exit 1; }

    # Streaming run publishing a live status snapshot.
    rc=0
    "$dir/tools/intellog" detect "$tmp/$sys/clean" -m "$tmp/$sys/model.json" \
        --status-file "$tmp/$sys/status.json" >/dev/null || rc=$?
    [[ $rc -eq 0 || $rc -eq 3 ]] || {
      echo "observatory smoke: FAIL — streaming detect exited $rc for $sys" >&2; exit 1; }
    "$dir/tools/intellog" top "$tmp/$sys/status.json" >/dev/null

    python3 "$repo/tools/validate_observatory.py" "$tmp/$sys" "$sys" || {
      echo "observatory smoke: FAIL — schema validation for $sys" >&2; exit 1; }
  done
  rm -rf "$tmp"
  echo "observatory smoke: OK (spark, mapreduce, tez)"
}

# Quality smoke: the Quality Observatory loop, end to end through the CLI
# with the bench_table6 seeds. loggen emits the Table-6 evaluation workload
# for spark with its ground-truth labels sidecar; detect runs with the
# coverage ledger attached; `intellog score` replays the Table-6
# accounting and must land exactly on the committed bench envelope for
# these seeds (15 detected / 1 FP / 0 FN — same numerators and
# denominators as bench_table6_anomaly's spark row). Two trainings of the
# same corpus must diff-model at drift exactly 0, and the coverage report
# must pass strict schema validation.
quality_smoke() {
  local dir="$repo/build-ci-release"
  [[ -x "$dir/tools/intellog" ]] || run_config release -DCMAKE_BUILD_TYPE=Release
  echo "==> [quality] seeded score round-trip + coverage/drift gates"
  local tmp rc
  tmp="$(mktemp -d)"
  "$dir/tools/loggen" "$tmp/train" --system spark --jobs 30 --seed 2024 >/dev/null
  "$dir/tools/intellog" train "$tmp/train" -o "$tmp/model.json" >/dev/null

  # Identical corpus, second training: any nonzero structural drift means
  # training is nondeterministic or model IO lost a component class.
  "$dir/tools/intellog" train "$tmp/train" -o "$tmp/model2.json" >/dev/null
  "$dir/tools/intellog" diff-model "$tmp/model.json" "$tmp/model2.json" --json \
      > "$tmp/drift.json"

  # Table-6 evaluation workload + labels sidecar, detection with the
  # coverage ledger stamping, then the scorer over report + labels.
  "$dir/tools/loggen" "$tmp/eval" --system spark --table6 --seed 3030 \
      --labels "$tmp/labels.json" >/dev/null
  rc=0
  "$dir/tools/intellog" detect "$tmp/eval" -m "$tmp/model.json" --json \
      --coverage "$tmp/coverage.json" > "$tmp/report.json" 2>/dev/null || rc=$?
  [[ $rc -eq 3 ]] || {
    echo "quality smoke: FAIL — detect exited $rc (want 3: workload has injected faults)" >&2
    exit 1; }
  "$dir/tools/intellog" score "$tmp/report.json" --labels "$tmp/labels.json" --json \
      > "$tmp/score.json"

  python3 "$repo/tools/validate_observatory.py" quality "$tmp" 15 1 0 || {
    echo "quality smoke: FAIL — score/coverage/drift validation" >&2; exit 1; }
  rm -rf "$tmp"
}

# Chaos smoke: the seeded log-stream corruptor + hardened-ingestion soak
# (tools/chaos_soak), run under the ASan/UBSan build. Fails on any crash,
# leak, sanitizer report, or invariant violation — intact lines quarantined,
# kill-and-resume report divergence, duplicates-only parity break, or a
# session/record cap overrun.
chaos_smoke() {
  local dir="$repo/build-ci-asan"
  [[ -x "$dir/tools/chaos_soak" ]] || run_config asan \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  echo "==> [chaos] corrupted-stream soak (3 seeds, ASan/UBSan)"
  local tmp seed no_mmap
  tmp="$(mktemp -d)"
  for seed in 1 2 3; do
    # Seed 3 runs with mmap disabled: the read()-fallback reader must
    # survive the same corrupted streams as the mmap path.
    no_mmap=0; [[ "$seed" == 3 ]] && no_mmap=1
    ASAN_OPTIONS=detect_leaks=1 INTELLOG_ARENA_POISON=1 INTELLOG_NO_MMAP="$no_mmap" \
        "$dir/tools/chaos_soak" \
        --seed "$seed" --workdir "$tmp/soak_$seed" || {
      echo "chaos smoke: FAIL — seed $seed (see CHAOS VIOLATION lines above)" >&2
      exit 1
    }
  done
  rm -rf "$tmp"
}

# Serve smoke: the multi-tenant daemon's chaos gate (tools/serve_soak)
# under ASan/UBSan — per-tenant accounting balance against independent
# spool truth, kill-and-resume accounting identity, corrupt-checkpoint
# set-aside, quarantine-storm isolation (breaker + 2x latency bound),
# parse-bomb shedding with ledger provenance, and wedged-shard watchdog
# restarts — then one `intellog serve` run through the Release CLI with
# strict status-document validation.
serve_smoke() {
  local dir="$repo/build-ci-asan"
  if [[ -x "$dir/tools/serve_soak" ]]; then
    cmake --build "$dir" -j "$jobs" --target serve_soak
  else
    run_config asan \
        -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  fi
  echo "==> [serve] multi-tenant daemon soak (3 seeds, ASan/UBSan)"
  local tmp seed rc
  tmp="$(mktemp -d)"
  for seed in 1 2 3; do
    ASAN_OPTIONS=detect_leaks=1 INTELLOG_ARENA_POISON=1 \
        "$dir/tools/serve_soak" --seed "$seed" --workdir "$tmp/soak_$seed" || {
      echo "serve smoke: FAIL — seed $seed (see SERVE VIOLATION lines above)" >&2
      exit 1
    }
  done

  # CLI end to end: two tenant spools served to drain, then the published
  # status snapshot must pass strict serve-schema validation and render.
  local rdir="$repo/build-ci-release"
  if [[ -x "$rdir/tools/intellog" ]]; then
    # Incremental rebuild so a standalone `ci.sh serve` never runs a CLI
    # staler than the working tree (full run_config would re-ctest).
    cmake --build "$rdir" -j "$jobs" --target intellog --target loggen
  else
    run_config release -DCMAKE_BUILD_TYPE=Release
  fi
  echo "==> [serve] CLI serve end-to-end (Release)"
  "$rdir/tools/loggen" "$tmp/gen_a" --system spark --jobs 2 --seed 5 >/dev/null
  "$rdir/tools/loggen" "$tmp/gen_b" --system spark --jobs 2 --seed 6 >/dev/null
  mkdir -p "$tmp/root/acme" "$tmp/root/globex" "$tmp/train"
  cp "$tmp"/gen_a/job_*/*.log "$tmp/root/acme/"
  cp "$tmp"/gen_b/job_*/*.log "$tmp/root/globex/"
  cp "$tmp"/gen_a/job_*/*.log "$tmp"/gen_b/job_*/*.log "$tmp/train/"
  "$rdir/tools/intellog" train "$tmp/train" -o "$tmp/model.json" >/dev/null 2>&1
  rc=0
  "$rdir/tools/intellog" serve "$tmp/root" -m "$tmp/model.json" \
      --drain-on-empty --poll-ms 1 --max-ticks 300 \
      --status-file "$tmp/status.json" --metrics "$tmp/metrics.json" \
      >/dev/null 2>&1 || rc=$?
  [[ $rc -eq 0 ]] || {
    echo "serve smoke: FAIL — intellog serve exited $rc" >&2; exit 1; }
  "$rdir/tools/intellog" top "$tmp/status.json" >/dev/null || {
    echo "serve smoke: FAIL — top cannot render the serve status" >&2; exit 1; }
  python3 "$repo/tools/validate_observatory.py" serve "$tmp/status.json" || {
    echo "serve smoke: FAIL — serve status validation" >&2; exit 1; }
  rm -rf "$tmp"
}

# Flight smoke: the black-box recorder's crash drill. A Release daemon is
# booted with --blackbox against two tenant spools and SIGSEGV'd while
# detect work is flowing; it must die 128+11 leaving a decodable
# blackbox.bin whose merged event log passes the strict flight validator
# (>= 50 events spanning >= 3 subsystems, per-thread monotonic steady
# timestamps, reason=signal signo=11). /flightz must answer with a live
# ring snapshot before the kill, and the decode side (file parsing of a
# crash-truncatable binary format) re-runs under ASan/UBSan when that
# build exists — decode only, the dump is already on disk.
flight_smoke() {
  local dir="$repo/build-ci-release"
  if [[ -x "$dir/tools/intellog" ]]; then
    cmake --build "$dir" -j "$jobs" --target intellog --target loggen
  else
    run_config release -DCMAKE_BUILD_TYPE=Release
  fi
  echo "==> [flight] crash-time black-box drill (Release)"
  local tmp pid addr rc i
  tmp="$(mktemp -d)"
  "$dir/tools/loggen" "$tmp/gen_a" --system spark --jobs 2 --seed 5 >/dev/null
  "$dir/tools/loggen" "$tmp/gen_b" --system spark --jobs 2 --seed 6 >/dev/null
  mkdir -p "$tmp/root/acme" "$tmp/root/globex" "$tmp/train"
  cp "$tmp"/gen_a/job_*/*.log "$tmp/root/acme/"
  cp "$tmp"/gen_b/job_*/*.log "$tmp/root/globex/"
  cp "$tmp"/gen_a/job_*/*.log "$tmp"/gen_b/job_*/*.log "$tmp/train/"
  "$dir/tools/intellog" train "$tmp/train" -o "$tmp/model.json" >/dev/null 2>&1

  "$dir/tools/intellog" serve "$tmp/root" -m "$tmp/model.json" \
      --listen 127.0.0.1:0 --poll-ms 20 --blackbox "$tmp/blackbox.bin" \
      >/dev/null 2>"$tmp/serve.err" &
  pid=$!
  for i in $(seq 1 100); do
    grep -q "listening on http://" "$tmp/serve.err" && break
    kill -0 "$pid" 2>/dev/null || {
      echo "flight smoke: FAIL — serve died before listening:" >&2
      cat "$tmp/serve.err" >&2; exit 1; }
    sleep 0.1
  done
  addr="$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$tmp/serve.err" | head -1)"
  [[ -n "$addr" ]] || {
    echo "flight smoke: FAIL — no listen address in serve stderr" >&2; exit 1; }
  rc=2
  for i in $(seq 1 200); do
    rc=0; "$dir/tools/intellog" healthcheck "$addr" >/dev/null 2>&1 || rc=$?
    [[ $rc -eq 0 ]] && break
    sleep 0.1
  done
  [[ $rc -eq 0 ]] || {
    echo "flight smoke: FAIL — daemon never became ready (healthcheck $rc)" >&2
    kill -9 "$pid" 2>/dev/null; exit 1; }

  # Live ring snapshot while the daemon is healthy: /flightz must say the
  # recorder is on and already hold journal events.
  python3 - "$addr" <<'PY' || { kill -9 "$pid" 2>/dev/null; exit 1; }
import json, sys, urllib.request
doc = json.loads(urllib.request.urlopen(
    f"http://{sys.argv[1]}/flightz", timeout=15).read().decode())
if doc.get("enabled") is not True:
    sys.exit("flight smoke: FAIL - /flightz says recorder is off")
if not doc.get("events"):
    sys.exit("flight smoke: FAIL - /flightz snapshot holds no events")
PY

  # Fresh spool drops keep detect work in flight, then the crash drill:
  # SIGSEGV mid-run must exit 139 with the handler's dump on disk.
  cp "$tmp"/gen_a/job_*/*.log "$tmp/root/globex/" 2>/dev/null || true
  sleep 0.3
  kill -SEGV "$pid"
  rc=0; wait "$pid" || rc=$?
  [[ $rc -eq $((128 + 11)) ]] || {
    echo "flight smoke: FAIL — SIGSEGV exited $rc (want 139)" >&2; exit 1; }
  [[ -s "$tmp/blackbox.bin" ]] || {
    echo "flight smoke: FAIL — no blackbox.bin after the crash" >&2; exit 1; }

  "$dir/tools/intellog" flight decode "$tmp/blackbox.bin" > "$tmp/flight.txt" || {
    echo "flight smoke: FAIL — text decode failed" >&2; exit 1; }
  "$dir/tools/intellog" flight decode "$tmp/blackbox.bin" --trace > "$tmp/flight.trace.json" || {
    echo "flight smoke: FAIL — trace decode failed" >&2; exit 1; }
  "$dir/tools/intellog" flight decode "$tmp/blackbox.bin" --json > "$tmp/flight.json" || {
    echo "flight smoke: FAIL — json decode failed" >&2; exit 1; }
  python3 "$repo/tools/validate_observatory.py" flight "$tmp/flight.json" signal 11 || {
    echo "flight smoke: FAIL — flight validation" >&2; exit 1; }

  # Decode-only repeat under sanitizers: the dump parser takes untrusted
  # crash-time bytes, so it gets the ASan/UBSan pass too when available.
  local adir="$repo/build-ci-asan"
  if [[ -x "$adir/tools/intellog" ]]; then
    cmake --build "$adir" -j "$jobs" --target intellog
    "$adir/tools/intellog" flight decode "$tmp/blackbox.bin" --json > "$tmp/flight.asan.json" || {
      echo "flight smoke: FAIL — ASan decode failed" >&2; exit 1; }
    python3 "$repo/tools/validate_observatory.py" flight "$tmp/flight.asan.json" signal 11 || {
      echo "flight smoke: FAIL — ASan flight validation" >&2; exit 1; }
  else
    echo "flight smoke: note — no ASan build tree, decode-only repeat skipped"
  fi
  rm -rf "$tmp"
  echo "flight smoke: OK"
}

# HTTP smoke: the live telemetry plane end to end against a real daemon.
# `intellog serve --listen 127.0.0.1:0` is started against two tenant
# spools; once `healthcheck` reports ready, every admin endpoint must pass
# the strict http validator (content types, Prometheus exposition, serve
# status schema), /metrics must carry the per-tenant e2e-latency histogram
# with session exemplars, and `top --connect` must render the live view.
# Then a garbage flood trips one tenant's breaker: /readyz must flip to
# 503 (healthcheck exit 1) while the breaker is open and recover to 200
# after the half-open probe closes it. SIGTERM must drain gracefully.
# Runs against both the Release and the ASan/UBSan build.
http_smoke() {
  local name="$1"
  local dir="$repo/build-ci-$name"
  if [[ -x "$dir/tools/intellog" ]]; then
    cmake --build "$dir" -j "$jobs" --target intellog --target loggen
  elif [[ "$name" == asan ]]; then
    run_config asan \
        -DCMAKE_BUILD_TYPE=Debug \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  else
    run_config release -DCMAKE_BUILD_TYPE=Release
  fi
  echo "==> [http:$name] live admin-plane smoke"
  local tmp pid addr rc i
  tmp="$(mktemp -d)"
  "$dir/tools/loggen" "$tmp/gen_a" --system spark --jobs 2 --seed 5 >/dev/null
  "$dir/tools/loggen" "$tmp/gen_b" --system spark --jobs 2 --seed 6 >/dev/null
  mkdir -p "$tmp/root/acme" "$tmp/root/globex" "$tmp/train"
  cp "$tmp"/gen_a/job_*/*.log "$tmp/root/acme/"
  cp "$tmp"/gen_b/job_*/*.log "$tmp/root/globex/"
  cp "$tmp"/gen_a/job_*/*.log "$tmp"/gen_b/job_*/*.log "$tmp/train/"
  "$dir/tools/intellog" train "$tmp/train" -o "$tmp/model.json" >/dev/null 2>&1

  # --breaker-open-ticks 20 at --poll-ms 50 keeps /readyz degraded for
  # about a second, wide enough for the healthcheck poll below to observe
  # the flip on a loaded runner.
  "$dir/tools/intellog" serve "$tmp/root" -m "$tmp/model.json" \
      --listen 127.0.0.1:0 --poll-ms 50 --breaker-open-ticks 20 \
      >/dev/null 2>"$tmp/serve.err" &
  pid=$!
  for i in $(seq 1 100); do
    grep -q "listening on http://" "$tmp/serve.err" && break
    kill -0 "$pid" 2>/dev/null || {
      echo "http smoke: FAIL — serve died before listening:" >&2
      cat "$tmp/serve.err" >&2; exit 1; }
    sleep 0.1
  done
  addr="$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$tmp/serve.err" | head -1)"
  [[ -n "$addr" ]] || {
    echo "http smoke: FAIL — no listen address in serve stderr" >&2; exit 1; }

  # Ready once the first tick has published real state and both spools
  # consumed cleanly.
  rc=2
  for i in $(seq 1 200); do
    rc=0; "$dir/tools/intellog" healthcheck "$addr" >/dev/null 2>&1 || rc=$?
    [[ $rc -eq 0 ]] && break
    sleep 0.1
  done
  [[ $rc -eq 0 ]] || {
    echo "http smoke: FAIL — daemon never became ready (healthcheck $rc)" >&2
    kill -9 "$pid" 2>/dev/null; exit 1; }

  python3 "$repo/tools/validate_observatory.py" http "$addr" || {
    echo "http smoke: FAIL — endpoint validation" >&2
    kill -9 "$pid" 2>/dev/null; exit 1; }

  # The SLO pillar: per-tenant e2e latency histograms with session
  # exemplars must be in the live exposition once sessions have closed.
  python3 - "$addr" <<'PY' || { kill -9 "$pid" 2>/dev/null; exit 1; }
import sys, urllib.request
body = urllib.request.urlopen(f"http://{sys.argv[1]}/metrics", timeout=15).read().decode()
lines = [l for l in body.splitlines() if l.startswith("intellog_serve_e2e_latency_ms_bucket")]
if not lines:
    sys.exit("http smoke: FAIL - no e2e latency buckets in /metrics")
for tenant in ("acme", "globex"):
    if not any(f'tenant="{tenant}"' in l for l in lines):
        sys.exit(f"http smoke: FAIL - no e2e latency series for {tenant}")
if not any(' # {session="' in l for l in lines):
    sys.exit("http smoke: FAIL - e2e latency buckets carry no session exemplars")
PY

  "$dir/tools/intellog" top --connect "$addr" | grep -q "e2e latency" || {
    echo "http smoke: FAIL — top --connect does not render e2e latency" >&2
    kill -9 "$pid" 2>/dev/null; exit 1; }

  # Breaker flip: a flood file of junk with one parseable line at the END —
  # the trailing line lets format detection succeed, and with no parsed
  # record yet every junk line quarantines as "unparseable" (junk after a
  # valid record would fold into it as stack-trace continuations instead).
  # >50% of the tick's lines quarantining with >= 64 seen trips the
  # breaker, and /readyz must say so.
  { for i in $(seq 1 200); do echo "@@ garbage line $i @@"; done
    head -1 "$(ls "$tmp/root/acme"/*.log | head -1)"
  } > "$tmp/flood.log"
  mv "$tmp/flood.log" "$tmp/root/acme/zzflood.log"
  rc=0
  for i in $(seq 1 200); do
    rc=0; "$dir/tools/intellog" healthcheck "$addr" >/dev/null 2>&1 || rc=$?
    [[ $rc -eq 1 ]] && break
    [[ $rc -eq 2 ]] && break
    sleep 0.05
  done
  [[ $rc -eq 1 ]] || {
    echo "http smoke: FAIL — breaker trip never degraded /readyz (last $rc)" >&2
    kill -9 "$pid" 2>/dev/null; exit 1; }

  # Recovery: the half-open probe closes the breaker once the pause ends
  # (the flood file is already done), and /readyz must return to 200.
  rc=1
  for i in $(seq 1 200); do
    rc=0; "$dir/tools/intellog" healthcheck "$addr" >/dev/null 2>&1 || rc=$?
    [[ $rc -eq 0 ]] && break
    sleep 0.1
  done
  [[ $rc -eq 0 ]] || {
    echo "http smoke: FAIL — /readyz never recovered after the breaker pause" >&2
    kill -9 "$pid" 2>/dev/null; exit 1; }

  kill -TERM "$pid"
  rc=0; wait "$pid" || rc=$?
  [[ $rc -eq $((128 + 15)) ]] || {
    echo "http smoke: FAIL — SIGTERM drain exited $rc (want 143)" >&2; exit 1; }
  rm -rf "$tmp"
  echo "http smoke: OK ($name)"
}

case "$mode" in
  release|all)
    run_config release -DCMAKE_BUILD_TYPE=Release
    ;;&
  asan|all)
    run_config asan \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
    ;;&
  chaos|all)
    chaos_smoke
    ;;&
  serve|all)
    serve_smoke
    ;;&
  release|http|all)
    http_smoke release
    ;;&
  asan|http|all)
    http_smoke asan
    ;;&
  release|flight|all)
    flight_smoke
    ;;&
  release|bench|all)
    bench_smoke
    ;;&
  release|observatory|all)
    observatory_smoke
    ;;&
  release|quality|all)
    quality_smoke
    ;;&
  release|profile|all)
    profile_smoke release
    ;;&
  asan|profile|all)
    profile_smoke asan
    ;;&
  release|asan|bench|chaos|serve|http|flight|observatory|quality|profile|all) ;;
  *)
    echo "usage: $0 [release|asan|bench|chaos|serve|http|flight|observatory|quality|profile|all]" >&2
    exit 2
    ;;
esac

echo "==> ci.sh OK ($mode)"
