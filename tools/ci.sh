#!/usr/bin/env bash
# Tier-1 verification: build + run the full test suite in Release, then
# again under ASan/UBSan. Run from anywhere; builds land in build-ci-*.
#
#   tools/ci.sh            # both configurations
#   tools/ci.sh release    # Release only
#   tools/ci.sh asan       # sanitizers only
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
mode="${1:-all}"

generator=()
command -v ninja >/dev/null 2>&1 && generator=(-G Ninja)

run_config() {
  local name="$1"; shift
  local dir="$repo/build-ci-$name"
  echo "==> [$name] configure"
  cmake -B "$dir" -S "$repo" "${generator[@]}" "$@"
  echo "==> [$name] build"
  cmake --build "$dir" -j "$jobs"
  echo "==> [$name] ctest"
  ctest --test-dir "$dir" -j "$jobs" --output-on-failure
}

case "$mode" in
  release|all)
    run_config release -DCMAKE_BUILD_TYPE=Release
    ;;&
  asan|all)
    run_config asan \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
    ;;&
  release|asan|all) ;;
  *)
    echo "usage: $0 [release|asan|all]" >&2
    exit 2
    ;;
esac

echo "==> ci.sh OK ($mode)"
