#!/usr/bin/env python3
"""Strict schema validation for the observatory and quality CI stages.

Default mode validates the artifacts one observatory_smoke iteration
produced in <dir>:
  trace.json   Chrome trace-event export of the clean run
  otlp.json    OTLP-style export of the same run
  report.json  `intellog detect --json` output for the faulty run
  status.json  `--status-file` snapshot from the streaming run

`quality <dir> <detected> <fp> <fn>` mode validates the Quality
Observatory artifacts quality_smoke produced in <dir>:
  score.json     `intellog score --json` — Table-6 tallies must equal the
                 expected detected/fp/fn exactly, and the emitted
                 precision/recall must be internally consistent
  coverage.json  coverage-ledger report — per-class hit/dead/stale
                 bookkeeping must add up
  drift.json     `intellog diff-model --json` of two identical-seed
                 trainings — drift_score must be exactly 0

`profile <prefix>` mode validates the Performance Observatory artifacts
profile_smoke produced (`intellog detect --profile <prefix>`):
  <prefix>             collapsed stacks, CPU-sample weights — every line
                       must match "frame[;frame]* COUNT"
  <prefix>.alloc       collapsed stacks, allocation-byte weights
  <prefix>.pprof.json  pprof-style JSON whose per-frame self counters must
                       sum exactly to the document totals (and match the
                       collapsed weights); the union of frame paths must
                       span ingest/spell/extract/detect with >= 8 distinct
                       paths and alloc bytes attributed to >= 5 frames

`serve <status.json>` mode validates the status snapshot an `intellog
serve` run publishes: the detect-mode status schema plus a sorted,
duplicate-free per-tenant table (breaker state, occupancy, accounting
with quarantined <= seen) and the intellog_serve_* metric families.

`http HOST:PORT` mode probes a live `serve --listen` admin plane: every
endpoint must answer with the right status and content type, /metrics
must pass strict Prometheus text-exposition checks (one HELP/TYPE per
family, well-formed samples, histogram +Inf bucket == _count), and
/status.json must satisfy the serve-mode status schema. Any 5xx or
unreachable endpoint is fatal.

`flight <flight.json> [reason signo]` mode validates a decoded flight-
recorder dump (`intellog flight decode --json` of the blackbox a crashed
daemon left behind): schema, >= 50 events spanning >= 3 subsystems,
per-thread (per ring slot, in listed order) monotonic steady timestamps,
and — for the CI crash drill — reason "signal" with signo 11.

"Strict" means: the whole file must be one JSON document (json.loads over
the full text rejects trailing garbage), every entity-group track must
carry at least one lifespan span, and every finding must prove itself with
file/line/byte-offset evidence. Exits nonzero with a message on the first
schema drift, so ci.sh fails loudly instead of shipping a broken exporter.
"""

import json
import sys


def fail(msg):
    print(f"validate_observatory: {msg}", file=sys.stderr)
    sys.exit(1)


def load_strict(path):
    # read-then-loads: a concatenated or truncated document is an error,
    # unlike stream parsers that stop at the first complete value.
    with open(path, encoding="utf-8") as f:
        text = f.read()
    try:
        return json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"{path}: not a single valid JSON document: {e}")


def check_chrome_trace(path):
    doc = load_strict(path)
    if doc.get("displayTimeUnit") != "ms":
        fail(f"{path}: missing displayTimeUnit")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: empty or missing traceEvents")
    tracks = {}       # (pid, tid) -> thread_name
    group_spans = {}  # (pid, tid) -> lifespan span count
    sub_spans = 0
    for e in events:
        ph = e.get("ph")
        if ph not in ("X", "i", "M"):
            fail(f"{path}: unexpected phase {ph!r}")
        key = (e.get("pid"), e.get("tid"))
        if ph == "M":
            if e.get("name") == "thread_name":
                tracks[key] = e["args"]["name"]
            continue
        if not isinstance(e.get("ts"), (int, float)) or e["ts"] < 0:
            fail(f"{path}: event without a valid ts: {e}")
        if ph == "X":
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 1:
                fail(f"{path}: complete event with dur < 1us: {e}")
            if e.get("name", "").startswith("sub "):
                sub_spans += 1
            else:
                group_spans[key] = group_spans.get(key, 0) + 1
    if not tracks:
        fail(f"{path}: no entity-group thread_name tracks")
    for key, name in tracks.items():
        if group_spans.get(key, 0) < 1:
            fail(f"{path}: track {name!r} has no entity-group lifespan span")
    if sub_spans == 0:
        fail(f"{path}: no subroutine spans")
    return len(tracks), sub_spans


def check_otlp(path):
    doc = load_strict(path)
    resource_spans = doc.get("resourceSpans")
    if not isinstance(resource_spans, list) or not resource_spans:
        fail(f"{path}: empty or missing resourceSpans")
    for rs in resource_spans:
        span_ids, parents = set(), []
        for ss in rs.get("scopeSpans", []):
            for sp in ss.get("spans", []):
                tid, sid = sp.get("traceId", ""), sp.get("spanId", "")
                if len(tid) != 32 or len(sid) != 16:
                    fail(f"{path}: malformed span ids {tid!r}/{sid!r}")
                int(tid, 16), int(sid, 16)  # must be hex
                span_ids.add(sid)
                if "parentSpanId" in sp:
                    parents.append(sp["parentSpanId"])
                if int(sp["endTimeUnixNano"]) <= int(sp["startTimeUnixNano"]):
                    fail(f"{path}: span {sp.get('name')!r} ends before it starts")
        if not span_ids:
            fail(f"{path}: resourceSpans entry with no spans")
        for p in parents:
            if p not in span_ids:
                fail(f"{path}: dangling parentSpanId {p!r}")


def check_report(path):
    reports = load_strict(path)
    if not isinstance(reports, list):
        fail(f"{path}: detect --json must emit an array")
    findings = 0
    for report in reports:
        for u in report.get("unexpected_messages", []):
            findings += 1
            check_evidence(path, u, f"unexpected@{u.get('record_index')}")
        for issue in report.get("group_issues", []):
            findings += 1
            check_evidence(path, issue, f"{issue.get('kind')}:{issue.get('group')}")
    return len(reports), findings


def check_evidence(path, finding, label):
    ev = finding.get("evidence")
    if not isinstance(ev, dict):
        fail(f"{path}: finding {label} has no evidence block")
    lines = ev.get("lines")
    if not isinstance(lines, list) or not lines:
        fail(f"{path}: finding {label} has no evidence lines")
    for line in lines:
        for key in ("file", "line", "byte_offset", "content", "record_index"):
            if key not in line:
                fail(f"{path}: evidence line of {label} lacks {key!r}")
        if not line["file"]:
            fail(f"{path}: evidence line of {label} has an empty file")
        # Sessions came off disk, so real provenance is required — a zero
        # line number would mean the ingest path dropped it.
        if line["line"] < 1:
            fail(f"{path}: evidence line of {label} has line {line['line']}")
        if line["byte_offset"] < 0:
            fail(f"{path}: negative byte offset in {label}")


def check_status(path):
    check_status_doc(load_strict(path), path)


def check_status_doc(doc, path):
    if doc.get("kind") != "intellog_status":
        fail(f"{path}: kind != intellog_status")
    # Versioned since the Quality Observatory: `intellog top` warns on a
    # version it doesn't know, so the writer must always stamp one.
    if not isinstance(doc.get("schema_version"), int) or doc["schema_version"] < 1:
        fail(f"{path}: missing or non-positive schema_version")
    for key, typ in (("sessions", list), ("occupancy", dict),
                     ("counters", dict), ("gauges", dict)):
        if not isinstance(doc.get(key), typ):
            fail(f"{path}: missing or mistyped {key!r}")
    occ = doc["occupancy"]
    for key in ("open_sessions", "buffered_records", "pending_evicted"):
        if not isinstance(occ.get(key), int):
            fail(f"{path}: occupancy lacks {key!r}")
    hist = doc.get("consume_latency_us")
    if hist is not None:
        if not isinstance(hist.get("buckets"), list) or not hist["buckets"]:
            fail(f"{path}: consume_latency_us without buckets")


def check_serve_status(path):
    return check_serve_status_doc(load_strict(path), path)


def check_serve_status_doc(doc, path):
    """Serve-mode status: the detect-mode schema plus the per-tenant table
    and the intellog_serve_* self-monitoring series."""
    check_status_doc(doc, path)
    tenants = doc.get("tenants")
    if not isinstance(tenants, list) or not tenants:
        fail(f"{path}: serve status without a tenants array")
    names = []
    for t in tenants:
        name = t.get("tenant")
        if not isinstance(name, str) or not name:
            fail(f"{path}: tenant row without a name: {t}")
        names.append(name)
        if t.get("breaker") not in ("closed", "open", "half-open"):
            fail(f"{path}: tenant {name}: bad breaker state {t.get('breaker')!r}")
        for key in ("epoch", "open_sessions", "buffered_records",
                    "pending_files", "pending_bytes", "restarts"):
            if not isinstance(t.get(key), int) or t[key] < 0:
                fail(f"{path}: tenant {name} lacks non-negative integer {key!r}")
        acc = t.get("accounting")
        if not isinstance(acc, dict):
            fail(f"{path}: tenant {name} has no accounting block")
        for key in ("records_admitted", "lines_seen", "lines_quarantined",
                    "sessions_closed", "sessions_anomalous", "files_done",
                    "files_shed", "bytes_shed", "breaker_trips"):
            if not isinstance(acc.get(key), int) or acc[key] < 0:
                fail(f"{path}: tenant {name} accounting lacks {key!r}")
        # Line accounting must be internally consistent: quarantined lines
        # are a subset of the lines seen.
        if acc["lines_quarantined"] > acc["lines_seen"]:
            fail(f"{path}: tenant {name}: more lines quarantined than seen")
    if names != sorted(names):
        fail(f"{path}: tenants not in service (sorted) order: {names}")
    if len(set(names)) != len(names):
        fail(f"{path}: duplicate tenant rows: {names}")
    counters = doc["counters"]
    if not any(k.startswith("intellog_serve_ticks_total") for k in counters):
        fail(f"{path}: no intellog_serve_ticks_total counter — the serve "
             "metrics bridge never ran")
    gauges = doc["gauges"]
    for family in ("intellog_serve_queue_saturation_ratio",
                   "intellog_serve_breakers_open"):
        if not any(k.startswith(family) for k in gauges):
            fail(f"{path}: missing serve gauge family {family!r}")
    if not isinstance(doc.get("alerts"), list):
        fail(f"{path}: serve status without an alerts array (stock "
             "serve_rules must always be evaluated)")
    return names


def serve_main(argv):
    if len(argv) != 2:
        fail("usage: validate_observatory.py serve <status.json>")
    names = check_serve_status(argv[1])
    print(f"validate_observatory: serve OK — {len(names)} tenant(s): "
          f"{', '.join(names)}")


def http_fetch(base, target, timeout=15):
    """GET base+target; returns (status, content_type, body_bytes). Any
    transport-level failure (refused, reset, timeout) is fatal — the CI
    stage starts the daemon first, so unreachable means it crashed."""
    import urllib.error
    import urllib.request
    url = base + target
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.headers.get("Content-Type", ""), resp.read()
    except urllib.error.HTTPError as e:
        body = e.read()
        return e.code, e.headers.get("Content-Type", "") or "", body
    except OSError as e:
        fail(f"{url}: unreachable: {e}")


def check_prometheus_text(text, label):
    """Strict Prometheus text-exposition checks: every line is a comment or
    a well-formed sample, HELP/TYPE at most once per family and before its
    samples, histogram families carry _bucket/_sum/_count with a +Inf
    bucket equal to _count. Returns the set of family names seen."""
    import re
    name_re = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
    label_set_re = r"\{(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\",?)*\}"
    number_re = r"-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
    # OpenMetrics-style exemplar suffix the serve e2e-latency histogram
    # emits on _bucket lines: ` # {session="..."} VALUE`.
    sample_re = re.compile(
        r"^(" + name_re + r")"
        r"(" + label_set_re + r")?"
        r" (" + number_re + r"|[+-]?Inf|NaN)"
        r"( # " + label_set_re + r" " + number_re + r")?$")
    if not text:
        fail(f"{label}: empty exposition")
    if not text.endswith("\n"):
        fail(f"{label}: exposition does not end with a newline")
    helped, typed, families = set(), set(), set()
    sampled = set()
    buckets = {}   # family -> +Inf bucket value
    sums = set()   # families with a _sum sample
    counts = {}    # family -> _count value
    for i, line in enumerate(text.splitlines(), 1):
        if not line:
            fail(f"{label}:{i}: blank line in exposition")
        if line.startswith("#"):
            m = re.match(r"^# (HELP|TYPE) (" + name_re + r")(?: (.*))?$", line)
            if not m:
                fail(f"{label}:{i}: malformed comment line: {line!r}")
            kind, family = m.group(1), m.group(2)
            seen = helped if kind == "HELP" else typed
            if family in seen:
                fail(f"{label}:{i}: duplicate {kind} for family {family}")
            if family in sampled:
                fail(f"{label}:{i}: {kind} for {family} after its samples")
            seen.add(family)
            if kind == "TYPE" and m.group(3) not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                fail(f"{label}:{i}: unknown TYPE {m.group(3)!r}")
            continue
        m = sample_re.match(line)
        if not m:
            fail(f"{label}:{i}: not a valid sample line: {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        if m.group(4) and not name.endswith("_bucket"):
            fail(f"{label}:{i}: exemplar on a non-bucket sample: {line!r}")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        families.add(family)
        sampled.add(family)
        sampled.add(name)
        if name.endswith("_bucket"):
            lem = re.search(r'le="([^"]*)"', labels)
            if not lem:
                fail(f"{label}:{i}: histogram bucket without le: {line!r}")
            if lem.group(1) == "+Inf":
                buckets[family] = float(value)
        elif name.endswith("_sum"):
            sums.add(family)
        elif name.endswith("_count"):
            counts[family] = float(value)
    for family in buckets:
        if family not in sums or family not in counts:
            fail(f"{label}: histogram {family} lacks _sum/_count")
        if buckets[family] != counts[family]:
            fail(f"{label}: histogram {family}: +Inf bucket "
                 f"{buckets[family]} != _count {counts[family]}")
    return families


def http_main(argv):
    if len(argv) != 2 or ":" not in argv[1]:
        fail("usage: validate_observatory.py http HOST:PORT")
    base = f"http://{argv[1]}"

    status, ctype, body = http_fetch(base, "/healthz")
    if status != 200 or not ctype.startswith("text/plain"):
        fail(f"/healthz: {status} {ctype!r}")
    if body.decode("utf-8", "replace").strip() != "ok":
        fail(f"/healthz: unexpected body {body!r}")

    status, ctype, body = http_fetch(base, "/readyz")
    if status not in (200, 503) or not ctype.startswith("application/json"):
        fail(f"/readyz: {status} {ctype!r}")
    try:
        ready = json.loads(body.decode("utf-8"))
    except json.JSONDecodeError as e:
        fail(f"/readyz: not JSON: {e}")
    if not isinstance(ready.get("ready"), bool) or \
            not isinstance(ready.get("reasons"), list):
        fail(f"/readyz: bad schema: {ready!r}")
    if ready["ready"] != (status == 200):
        fail(f"/readyz: ready={ready['ready']} but HTTP status {status}")

    status, ctype, body = http_fetch(base, "/metrics")
    if status != 200:
        fail(f"/metrics: HTTP {status}")
    if not ctype.startswith("text/plain") or "version=0.0.4" not in ctype:
        fail(f"/metrics: bad content type {ctype!r}")
    families = check_prometheus_text(body.decode("utf-8"), "/metrics")
    for family in ("intellog_serve_ticks_total",
                   "intellog_serve_queue_saturation_ratio",
                   "intellog_serve_breakers_open"):
        if family not in families:
            fail(f"/metrics: missing serve family {family}")

    status, ctype, body = http_fetch(base, "/status.json")
    if status != 200 or not ctype.startswith("application/json"):
        fail(f"/status.json: {status} {ctype!r}")
    try:
        doc = json.loads(body.decode("utf-8"))
    except json.JSONDecodeError as e:
        fail(f"/status.json: not JSON: {e}")
    names = check_serve_status_doc(doc, "/status.json")

    for target, want_list in (("/tenants", True), ("/alerts", True)):
        status, ctype, body = http_fetch(base, target)
        if status != 200 or not ctype.startswith("application/json"):
            fail(f"{target}: {status} {ctype!r}")
        try:
            payload = json.loads(body.decode("utf-8"))
        except json.JSONDecodeError as e:
            fail(f"{target}: not JSON: {e}")
        if want_list and not isinstance(payload, list):
            fail(f"{target}: expected a JSON array")
    if len(json.loads(http_fetch(base, "/tenants")[2])) != len(names):
        fail("/tenants: row count disagrees with /status.json")

    status, ctype, body = http_fetch(base, "/profilez?seconds=1", timeout=30)
    if status != 200 or not ctype.startswith("text/plain"):
        fail(f"/profilez: {status} {ctype!r}")
    import re
    pattern = re.compile(r"^([^; ]+(?:;[^; ]+)*) (\d+)$")
    for i, line in enumerate(body.decode("utf-8").splitlines(), 1):
        if line and not pattern.match(line):
            fail(f"/profilez:{i}: not a collapsed-stack line: {line!r}")

    status, _, _ = http_fetch(base, "/no-such-endpoint")
    if status != 404:
        fail(f"/no-such-endpoint: expected 404, got {status}")

    print(f"validate_observatory: http OK — all endpoints up, "
          f"{len(families)} metric families, {len(names)} tenant(s): "
          f"{', '.join(names)}")


def check_score(path, expect_detected, expect_fp, expect_fn):
    doc = load_strict(path)
    if doc.get("kind") != "intellog_score":
        fail(f"{path}: kind != intellog_score")
    if doc.get("schema_version") != 1:
        fail(f"{path}: unexpected schema_version {doc.get('schema_version')!r}")
    systems = doc.get("systems")
    if not isinstance(systems, list) or not systems:
        fail(f"{path}: empty or missing systems")
    overall = doc.get("overall")
    if not isinstance(overall, dict):
        fail(f"{path}: missing overall block")
    for row in systems + [overall]:
        label = row.get("system", "overall")
        for key in ("detected", "false_positives", "false_negatives",
                    "injected_jobs"):
            if not isinstance(row.get(key), int) or row[key] < 0:
                fail(f"{path}: {label} lacks non-negative integer {key!r}")
        # The ratios must be recomputable from the tallies they ship with —
        # a mismatch means the scorer and its JSON writer disagree.
        d, fp = row["detected"], row["false_positives"]
        injected = row["injected_jobs"]
        if d + row["false_negatives"] != injected:
            fail(f"{path}: {label}: detected+false_negatives != injected_jobs")
        want_p = d / (d + fp) if d + fp else 1.0
        want_r = d / injected if injected else 1.0
        if abs(row.get("precision", -1) - want_p) > 1e-9:
            fail(f"{path}: {label} precision {row.get('precision')} != {want_p}")
        if abs(row.get("recall", -1) - want_r) > 1e-9:
            fail(f"{path}: {label} recall {row.get('recall')} != {want_r}")
    got = (overall["detected"], overall["false_positives"], overall["false_negatives"])
    want = (expect_detected, expect_fp, expect_fn)
    if got != want:
        fail(f"{path}: D/FP/FN {got} != expected {want} — the seeded run no "
             "longer reproduces the committed bench_table6 envelope")
    return got


def check_coverage(path):
    doc = load_strict(path)
    if doc.get("kind") != "intellog_coverage":
        fail(f"{path}: kind != intellog_coverage")
    classes = doc.get("classes")
    if not isinstance(classes, dict):
        fail(f"{path}: missing classes")
    total = hit = 0
    for name in ("log_keys", "subroutines", "edges"):
        cls = classes.get(name)
        if not isinstance(cls, dict):
            fail(f"{path}: missing class {name!r}")
        components = cls.get("components")
        if not isinstance(components, list) or len(components) != cls.get("total"):
            fail(f"{path}: class {name}: components don't match total")
        nonzero = sum(1 for c in components if c.get("hits", 0) > 0)
        if nonzero != cls.get("hit"):
            fail(f"{path}: class {name}: hit={cls.get('hit')} but "
                 f"{nonzero} components have nonzero hits")
        by_name = {c["name"] for c in components}
        for bucket in ("dead", "stale"):
            for comp in cls.get(bucket, []):
                if comp not in by_name:
                    fail(f"{path}: class {name}: {bucket} lists unknown {comp!r}")
        total += cls["total"]
        hit += cls["hit"]
    if doc.get("total") != total or doc.get("hit") != hit:
        fail(f"{path}: top-level total/hit don't match the class sums")
    if total and abs(doc.get("coverage_ratio", -1) - hit / total) > 1e-9:
        fail(f"{path}: coverage_ratio != hit/total")
    if hit == 0:
        fail(f"{path}: detection exercised no model components — the "
             "ledger was never stamped")
    return hit, total


def check_drift(path):
    doc = load_strict(path)
    if doc.get("kind") != "intellog_model_diff":
        fail(f"{path}: kind != intellog_model_diff")
    if doc.get("drift_score") != 0:
        fail(f"{path}: identical-seed trainings drifted "
             f"(drift_score={doc.get('drift_score')}) — training is "
             "nondeterministic or model IO dropped a component class")
    for name, cls in doc.get("classes", {}).items():
        if cls.get("added") or cls.get("removed"):
            fail(f"{path}: class {name} has churn despite drift 0")
        if cls.get("common", 0) <= 0:
            fail(f"{path}: class {name} is empty — nothing was compared")


def check_collapsed(path, min_paths=0):
    """Collapsed-stack format (flamegraph.pl / speedscope): every line is
    "frame[;frame]* COUNT" with non-empty frames and a positive integer
    weight. Returns {path: weight}."""
    import re
    pattern = re.compile(r"^([^; ]+(?:;[^; ]+)*) (\d+)$")
    weights = {}
    with open(path, encoding="utf-8") as f:
        for i, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                fail(f"{path}:{i}: blank line in collapsed-stack output")
            m = pattern.match(line)
            if not m:
                fail(f"{path}:{i}: not a collapsed-stack line: {line!r}")
            stack, weight = m.group(1), int(m.group(2))
            if weight <= 0:
                fail(f"{path}:{i}: non-positive weight")
            if stack in weights:
                fail(f"{path}:{i}: duplicate frame path {stack!r}")
            weights[stack] = weight
    if len(weights) < min_paths:
        fail(f"{path}: only {len(weights)} distinct frame paths "
             f"(need >= {min_paths})")
    return weights


def check_pprof(path):
    doc = load_strict(path)
    if doc.get("kind") != "intellog_profile":
        fail(f"{path}: kind != intellog_profile")
    if not isinstance(doc.get("schema_version"), int) or doc["schema_version"] < 1:
        fail(f"{path}: bad schema_version")
    frames = doc.get("frames")
    if not isinstance(frames, list) or not frames:
        fail(f"{path}: empty or missing frames")
    samples = allocs = alloc_bytes = 0
    alloc_frames = 0
    for fr in frames:
        for key in ("path", "name", "self_samples", "cum_samples",
                    "alloc_bytes", "cum_alloc_bytes", "allocs", "enters"):
            if key not in fr:
                fail(f"{path}: frame missing {key}: {fr.get('path')}")
        if fr["cum_samples"] < fr["self_samples"]:
            fail(f"{path}: {fr['path']}: cumulative < self samples")
        if fr["cum_alloc_bytes"] < fr["alloc_bytes"]:
            fail(f"{path}: {fr['path']}: cumulative < self alloc bytes")
        samples += fr["self_samples"]
        alloc_bytes += fr["alloc_bytes"]
        allocs += fr["allocs"]
        if fr["alloc_bytes"] > 0:
            alloc_frames += 1
    # The balancing invariant: per-frame self counters partition the totals.
    if samples != doc.get("total_samples"):
        fail(f"{path}: sum(self_samples)={samples} != "
             f"total_samples={doc.get('total_samples')}")
    if alloc_bytes != doc.get("total_alloc_bytes"):
        fail(f"{path}: sum(alloc_bytes)={alloc_bytes} != "
             f"total_alloc_bytes={doc.get('total_alloc_bytes')}")
    if allocs != doc.get("total_allocs"):
        fail(f"{path}: sum(allocs)={allocs} != "
             f"total_allocs={doc.get('total_allocs')}")
    return samples, alloc_bytes, alloc_frames


def profile_main(argv):
    if len(argv) != 2:
        fail("usage: validate_observatory.py profile <prefix>")
    prefix = argv[1]
    cpu = check_collapsed(prefix)
    alloc = check_collapsed(f"{prefix}.alloc")
    samples, alloc_bytes, alloc_frames = check_pprof(f"{prefix}.pprof.json")

    if not cpu:
        fail(f"{prefix}: no CPU samples collected — workload too short or "
             "the sampler never ran")
    if sum(cpu.values()) != samples:
        fail(f"{prefix}: collapsed CPU weight {sum(cpu.values())} != "
             f"pprof total_samples {samples}")
    if sum(alloc.values()) != alloc_bytes:
        fail(f"{prefix}.alloc: collapsed weight {sum(alloc.values())} != "
             f"pprof total_alloc_bytes {alloc_bytes}")

    # Coverage of the pipeline: the profiled run must span ingestion,
    # Spell matching, extraction and anomaly detection. Allocation paths
    # are deterministic, CPU paths are sampled — check the union.
    paths = set(cpu) | set(alloc)
    if len(paths) < 8:
        fail(f"{prefix}: only {len(paths)} distinct frame paths across "
             "CPU+alloc collapsed stacks (need >= 8)")
    for family in ("ingest.", "spell.", "extract.", "detect."):
        if not any(family in p for p in paths):
            fail(f"{prefix}: no frame path mentions {family}* — the "
                 "pipeline stage is unannotated or never ran")
    if alloc_frames < 5:
        fail(f"{prefix}: allocation bytes attributed to only {alloc_frames} "
             "frames (need >= 5)")
    print(f"validate_observatory: profile OK — {len(cpu)} CPU paths "
          f"({samples} samples), {len(alloc)} alloc paths "
          f"({alloc_bytes} bytes over {alloc_frames} frames)")


def quality_main(argv):
    if len(argv) != 5:
        fail("usage: validate_observatory.py quality <dir> <detected> <fp> <fn>")
    d = argv[1]
    expect = [int(x) for x in argv[2:5]]
    got = check_score(f"{d}/score.json", *expect)
    hit, total = check_coverage(f"{d}/coverage.json")
    check_drift(f"{d}/drift.json")
    print(f"validate_observatory: quality OK — score D/FP/FN {got}, "
          f"coverage {hit}/{total} components, drift 0")


def flight_main(argv):
    if len(argv) not in (2, 4):
        fail("usage: validate_observatory.py flight <flight.json> [reason signo]")
    path = argv[1]
    doc = load_strict(path)
    if doc.get("kind") != "intellog_flight":
        fail(f"{path}: kind is {doc.get('kind')!r}, not intellog_flight")
    for key in ("version", "reason", "signo", "threads", "dropped", "events",
                "anchor_wall_ns", "anchor_steady_ns"):
        if key not in doc:
            fail(f"{path}: missing {key}")
    if len(argv) == 4:
        want_reason, want_signo = argv[2], int(argv[3])
        if doc["reason"] != want_reason:
            fail(f"{path}: reason {doc['reason']!r}, want {want_reason!r}")
        if doc["signo"] != want_signo:
            fail(f"{path}: signo {doc['signo']}, want {want_signo}")

    events = doc["events"]
    if not isinstance(events, list) or len(events) < 50:
        fail(f"{path}: only {len(events) if isinstance(events, list) else '?'} "
             "events (need >= 50 — the journal was not always-on)")
    subsystems = set()
    last_by_slot = {}
    for i, e in enumerate(events):
        for key in ("seq", "steady_ns", "wall_ns", "slot", "os_tid", "event",
                    "subsystem"):
            if key not in e:
                fail(f"{path}: event {i} missing {key}")
        subsystems.add(e["subsystem"])
        # The merged log is globally time-sorted, so per-slot order in the
        # listed sequence must also be monotonic in the steady clock — a
        # violation means the decoder mis-merged or a ring tore.
        slot = e["slot"]
        if slot in last_by_slot and e["steady_ns"] < last_by_slot[slot]:
            fail(f"{path}: event {i} (slot {slot}) steady_ns goes backwards")
        last_by_slot[slot] = e["steady_ns"]
    if len(subsystems) < 3:
        fail(f"{path}: events span only {sorted(subsystems)} "
             "(need >= 3 subsystems)")
    print(f"validate_observatory: flight OK — {len(events)} events over "
          f"{len(last_by_slot)} thread(s) and {len(subsystems)} subsystems "
          f"({doc['reason']}, signo {doc['signo']}, "
          f"dropped {doc['dropped']})")


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "quality":
        quality_main(sys.argv[1:])
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "profile":
        profile_main(sys.argv[1:])
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "serve":
        serve_main(sys.argv[1:])
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "http":
        http_main(sys.argv[1:])
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "flight":
        flight_main(sys.argv[1:])
        return
    if len(sys.argv) != 3:
        fail("usage: validate_observatory.py <artifact-dir> <system> | "
             "quality <dir> <detected> <fp> <fn> | profile <prefix> | "
             "serve <status.json> | http HOST:PORT | "
             "flight <flight.json> [reason signo]")
    d, system = sys.argv[1], sys.argv[2]
    tracks, subs = check_chrome_trace(f"{d}/trace.json")
    check_otlp(f"{d}/otlp.json")
    reports, findings = check_report(f"{d}/report.json")
    check_status(f"{d}/status.json")
    if reports == 0:
        fail(f"{d}: faulty {system} run produced no anomalous reports — "
             "the evidence path was never exercised")
    print(f"validate_observatory: {system} OK — {tracks} group tracks, "
          f"{subs} subroutine spans, {reports} anomalous reports, "
          f"{findings} evidence-backed findings")


if __name__ == "__main__":
    main()
