// loggen — generate an on-disk log dataset from the simulated systems.
//
//   loggen <outdir> [--system spark|mapreduce|tez|tensorflow]
//          [--jobs N] [--seed S]
//          [--fault none|abort|network|node] [--fault-node K]
//          [--low-memory]
//
// Writes <outdir>/job_<n>/<container_id>.log in the system's native log
// format, plus <outdir>/manifest.json recording the job specs and fault
// ground truth (for scoring; the IntelLog CLI never reads it).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json.hpp"
#include "logparse/log_io.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

int usage() {
  std::cerr << "usage: loggen <outdir> [--system S] [--jobs N] [--seed S]\n"
               "              [--fault none|abort|network|node] [--fault-node K]\n"
               "              [--low-memory]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string outdir = argv[1];
  std::string system = "spark";
  int jobs = 5;
  std::uint64_t seed = 1;
  std::string fault_name = "none";
  int fault_node = -1;
  bool low_memory = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--system") system = next();
    else if (arg == "--jobs") jobs = std::stoi(next());
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--fault") fault_name = next();
    else if (arg == "--fault-node") fault_node = std::stoi(next());
    else if (arg == "--low-memory") low_memory = true;
    else return usage();
  }

  simsys::ProblemKind kind = simsys::ProblemKind::None;
  if (fault_name == "abort") kind = simsys::ProblemKind::SessionAbort;
  else if (fault_name == "network") kind = simsys::ProblemKind::NetworkFailure;
  else if (fault_name == "node") kind = simsys::ProblemKind::NodeFailure;
  else if (fault_name != "none") return usage();

  const simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  const auto fmt = system == "spark" || system == "tensorflow"
                       ? logparse::make_spark_formatter()
                       : logparse::make_hadoop_formatter();

  common::Json manifest = common::Json::object();
  manifest["system"] = system;
  manifest["seed"] = seed;
  common::Json jobs_json = common::Json::array();

  std::size_t total_lines = 0, total_sessions = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int j = 0; j < jobs; ++j) {
    simsys::JobSpec spec = gen.training_job();
    if (low_memory) {
      spec.container_memory_mb = static_cast<int>(spec.required_memory_mb() * 0.7);
    }
    simsys::FaultPlan plan;
    if (kind != simsys::ProblemKind::None) {
      plan = gen.make_fault(kind, cluster);
      if (fault_node >= 0) plan.target_node = fault_node;
    }
    const simsys::JobResult result = simsys::run_job(spec, cluster, plan);

    const std::string job_dir =
        (std::filesystem::path(outdir) / ("job_" + std::to_string(j))).string();
    logparse::write_log_directory(*fmt, result.sessions, job_dir);

    common::Json job = common::Json::object();
    job["name"] = spec.name;
    job["input_gb"] = spec.input_gb;
    job["container_memory_mb"] = spec.container_memory_mb;
    job["fault"] = std::string(simsys::to_string(plan.kind));
    job["dir"] = job_dir;
    common::Json affected = common::Json::array();
    for (const auto& c : result.affected_containers) affected.push_back(c);
    job["affected_containers"] = std::move(affected);
    common::Json perf = common::Json::array();
    for (const auto& c : result.perf_affected_containers) perf.push_back(c);
    job["perf_affected_containers"] = std::move(perf);
    jobs_json.push_back(std::move(job));

    total_sessions += result.sessions.size();
    for (const auto& s : result.sessions) total_lines += s.records.size();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  manifest["jobs"] = std::move(jobs_json);
  manifest["generation_wall_ms"] = wall_ms;
  manifest["generation_lines_per_s"] =
      wall_ms > 0 ? static_cast<double>(total_lines) / (wall_ms / 1000.0) : 0.0;
  std::ofstream mf(std::filesystem::path(outdir) / "manifest.json");
  mf << manifest.dump(2) << "\n";

  std::cout << "wrote " << jobs << " " << system << " jobs (" << total_sessions
            << " sessions, " << total_lines << " log lines) under " << outdir << "\n";
  std::cout << "generated in " << wall_ms << " ms ("
            << static_cast<std::uint64_t>(manifest["generation_lines_per_s"].as_double())
            << " lines/s)\n";
  return 0;
}
