// loggen — generate an on-disk log dataset from the simulated systems.
//
//   loggen <outdir> [--system spark|mapreduce|tez|tensorflow]
//          [--jobs N] [--seed S]
//          [--fault none|abort|network|node] [--fault-node K]
//          [--low-memory] [--labels <file>] [--table6]
//
// Writes <outdir>/job_<n>/<container_id>.log in the system's native log
// format, plus <outdir>/manifest.json recording the job specs and fault
// ground truth (for scoring; the IntelLog CLI never reads it).
//
// `--labels <file>` additionally writes an intellog_labels sidecar — the
// per-job ground truth (injected problem, container sets) in the schema
// `intellog score` consumes.
//
// `--table6` replaces the uniform job loop with the paper's §6.4
// evaluation workload (5 configuration sets x 6 jobs, 15 injected + 15
// clean, two borderline-memory): the exact workload bench_table6_anomaly
// runs in-memory for the same seed, so scoring a detect run over the
// generated dataset reproduces the bench's numerators. Ignores --jobs,
// --fault and --low-memory.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json.hpp"
#include "core/scoring.hpp"
#include "logparse/log_io.hpp"
#include "simsys/eval_workload.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

int usage() {
  std::cerr << "usage: loggen <outdir> [--system S] [--jobs N] [--seed S]\n"
               "              [--fault none|abort|network|node] [--fault-node K]\n"
               "              [--low-memory] [--labels <file>] [--table6]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string outdir = argv[1];
  std::string system = "spark";
  int jobs = 5;
  std::uint64_t seed = 1;
  std::string fault_name = "none";
  std::string labels_path;
  int fault_node = -1;
  bool low_memory = false;
  bool table6 = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--system") system = next();
    else if (arg == "--jobs") jobs = std::stoi(next());
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--fault") fault_name = next();
    else if (arg == "--fault-node") fault_node = std::stoi(next());
    else if (arg == "--low-memory") low_memory = true;
    else if (arg == "--labels") labels_path = next();
    else if (arg == "--table6") table6 = true;
    else return usage();
  }

  simsys::ProblemKind kind = simsys::ProblemKind::None;
  if (fault_name == "abort") kind = simsys::ProblemKind::SessionAbort;
  else if (fault_name == "network") kind = simsys::ProblemKind::NetworkFailure;
  else if (fault_name == "node") kind = simsys::ProblemKind::NodeFailure;
  else if (fault_name != "none") return usage();

  const simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen(system, seed);
  const auto fmt = system == "spark" || system == "tensorflow"
                       ? logparse::make_spark_formatter()
                       : logparse::make_hadoop_formatter();

  common::Json manifest = common::Json::object();
  manifest["system"] = system;
  manifest["seed"] = seed;
  common::Json jobs_json = common::Json::array();
  core::Labels labels;
  labels.system = system;
  labels.seed = seed;

  // One generated job, already run: write its logs, record manifest +
  // label ground truth. Shared between the uniform loop and --table6.
  std::size_t total_lines = 0, total_sessions = 0;
  int job_index = 0;
  const auto emit_job = [&](const simsys::JobResult& result, bool injected,
                            bool borderline) {
    const std::string job_dir =
        (std::filesystem::path(outdir) / ("job_" + std::to_string(job_index++))).string();
    logparse::write_log_directory(*fmt, result.sessions, job_dir);

    common::Json job = common::Json::object();
    job["name"] = result.spec.name;
    job["input_gb"] = result.spec.input_gb;
    job["container_memory_mb"] = result.spec.container_memory_mb;
    job["fault"] = std::string(simsys::to_string(result.fault.kind));
    job["dir"] = job_dir;
    common::Json affected = common::Json::array();
    for (const auto& c : result.affected_containers) affected.push_back(c);
    job["affected_containers"] = std::move(affected);
    common::Json perf = common::Json::array();
    for (const auto& c : result.perf_affected_containers) perf.push_back(c);
    job["perf_affected_containers"] = std::move(perf);
    jobs_json.push_back(std::move(job));

    core::LabeledJob label;
    label.name = result.spec.name;
    label.dir = job_dir;
    label.fault = simsys::to_string(result.fault.kind);
    label.injected = injected;
    label.borderline = borderline;
    for (const auto& s : result.sessions) label.containers.insert(s.container_id);
    label.affected = result.affected_containers;
    label.perf_affected = result.perf_affected_containers;
    labels.jobs.push_back(std::move(label));

    total_sessions += result.sessions.size();
    for (const auto& s : result.sessions) total_lines += s.records.size();
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (table6) {
    const auto workload = simsys::detection_workload(system, seed);
    for (const auto& dj : workload) emit_job(dj.result, dj.injected, dj.borderline);
    jobs = static_cast<int>(workload.size());
  } else {
    for (int j = 0; j < jobs; ++j) {
      simsys::JobSpec spec = gen.training_job();
      if (low_memory) {
        spec.container_memory_mb = static_cast<int>(spec.required_memory_mb() * 0.7);
      }
      simsys::FaultPlan plan;
      if (kind != simsys::ProblemKind::None) {
        plan = gen.make_fault(kind, cluster);
        if (fault_node >= 0) plan.target_node = fault_node;
      }
      const simsys::JobResult result = simsys::run_job(spec, cluster, plan);
      emit_job(result, /*injected=*/kind != simsys::ProblemKind::None,
               /*borderline=*/low_memory);
    }
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  manifest["jobs"] = std::move(jobs_json);
  manifest["generation_wall_ms"] = wall_ms;
  manifest["generation_lines_per_s"] =
      wall_ms > 0 ? static_cast<double>(total_lines) / (wall_ms / 1000.0) : 0.0;
  std::ofstream mf(std::filesystem::path(outdir) / "manifest.json");
  mf << manifest.dump(2) << "\n";

  if (!labels_path.empty()) {
    std::ofstream lf(labels_path);
    lf << labels.to_json().dump(2) << "\n";
    if (lf.flush(); lf) {
      std::cerr << "labels (" << labels.jobs.size() << " jobs) -> " << labels_path << "\n";
    } else {
      std::cerr << "error: cannot write labels to " << labels_path << "\n";
      return 1;
    }
  }

  std::cout << "wrote " << jobs << " " << system << " jobs (" << total_sessions
            << " sessions, " << total_lines << " log lines) under " << outdir << "\n";
  std::cout << "generated in " << wall_ms << " ms ("
            << static_cast<std::uint64_t>(manifest["generation_lines_per_s"].as_double())
            << " lines/s)\n";
  return 0;
}
