// serve_soak — chaos gate for the multi-tenant `intellog serve` daemon.
//
//   serve_soak [--seed S] [--workdir dir] [--jobs N] [--keep]
//
// One soak run, fully deterministic in --seed:
//   1. generate per-tenant spark spools + a shared model,
//   2. uninterrupted multi-tenant run (drain-on-empty): per-tenant
//      accounting must balance against an independent count of the spool's
//      records and session files,
//   3. kill-and-resume: the daemon is killed mid-flight (simulated crash:
//      no drain, no final checkpoint) at a seed-derived tick, then resumed;
//      final per-tenant accounting must be identical to the uninterrupted
//      run's — no double-counted sessions, no lost records,
//   4. corrupt-checkpoint recovery: a tampered tenant checkpoint is set
//      aside (renamed, counted) and the tenant replays to identical totals,
//   5. quarantine-storm isolation: one tenant's spool is flooded with
//      garbage (LogStreamCorruptor debris + raw binary files); only that
//      tenant's breaker may trip, every other tenant's accounting must be
//      untouched and its mean consume latency within 2x of a solo-run
//      baseline (with an absolute floor, so micro-latency noise cannot
//      fail the gate),
//   6. parse-bomb shedding: an oversized spool file is shed whole to the
//      shed ledger with provenance, trips the breaker, and the tenant's
//      clean files still complete after the breaker recloses,
//   7. wedged-shard supervision: a fault hook wedges one tenant's tick past
//      the heartbeat deadline; the watchdog must restart the shard
//      in-process and the tenant must still reach the uninterrupted totals.
//
// Exit 0 when every invariant holds; 1 with a "SERVE VIOLATION" line per
// failure otherwise. tools/ci.sh runs three seeds under ASan/UBSan.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/intellog.hpp"
#include "core/model_io.hpp"
#include "logparse/formatter.hpp"
#include "logparse/log_io.hpp"
#include "obs/metrics.hpp"
#include "serve/daemon.hpp"
#include "simsys/corruptor.hpp"
#include "simsys/workload.hpp"

using namespace intellog;
namespace fs = std::filesystem;

namespace {

int usage() {
  std::cerr << "usage: serve_soak [--seed S] [--workdir dir] [--jobs N] [--keep]\n";
  return 2;
}

bool g_failed = false;

void check(bool ok, const std::string& what) {
  if (ok) return;
  g_failed = true;
  std::cerr << "SERVE VIOLATION: " << what << "\n";
}

/// The integer (replay-deterministic) half of the accounting; latency sums
/// are wall-clock and legitimately differ between runs.
bool accounting_eq(const serve::TenantAccounting& a, const serve::TenantAccounting& b,
                   std::string* why) {
  const auto diff = [&](const char* field, std::uint64_t x, std::uint64_t y) {
    if (x == y) return false;
    *why = std::string(field) + ": " + std::to_string(x) + " != " + std::to_string(y);
    return true;
  };
  return !(diff("records_admitted", a.records_admitted, b.records_admitted) ||
           diff("lines_seen", a.lines_seen, b.lines_seen) ||
           diff("lines_quarantined", a.lines_quarantined, b.lines_quarantined) ||
           diff("sessions_closed", a.sessions_closed, b.sessions_closed) ||
           diff("sessions_anomalous", a.sessions_anomalous, b.sessions_anomalous) ||
           diff("files_done", a.files_done, b.files_done) ||
           diff("files_shed", a.files_shed, b.files_shed) ||
           diff("bytes_shed", a.bytes_shed, b.bytes_shed) ||
           diff("breaker_trips", a.breaker_trips, b.breaker_trips));
}

double mean_consume_us(const serve::TenantAccounting& a) {
  return a.records_admitted == 0 ? 0.0
                                 : a.consume_us_sum / static_cast<double>(a.records_admitted);
}

/// Writes one tenant spool: `gen_jobs` spark jobs' sessions as flat
/// <container>.log files, plus one zero-byte session (a container that died
/// before logging — the empty-session detect path).
void make_spool(const std::string& dir, std::uint64_t seed, std::size_t gen_jobs) {
  fs::create_directories(dir);
  const simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  const auto fmt = logparse::make_spark_formatter();
  for (std::size_t j = 0; j < gen_jobs; ++j) {
    const simsys::JobResult result = simsys::run_job(gen.training_job(), cluster, {});
    logparse::write_log_directory(*fmt, result.sessions, dir);
  }
  std::ofstream(dir + "/zz_empty_container.log");  // zero bytes
}

/// Independent ground truth for one spool directory, computed with the
/// same resilient reader the shard uses.
struct SpoolTruth {
  std::uint64_t files = 0;
  std::uint64_t records = 0;
  std::uint64_t sessions = 0;  ///< files that produce a session (records, or empty file)
};

SpoolTruth spool_truth(const std::string& dir) {
  SpoolTruth t;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (!e.is_regular_file() || e.path().extension() != ".log") continue;
    const std::string name = e.path().filename().string();
    if (!name.empty() && name[0] == '.') continue;
    ++t.files;
    const auto ingest = logparse::read_session_file_resilient(e.path().string());
    t.records += ingest.session.records.size();
    if (!ingest.session.records.empty() || fs::file_size(e.path()) == 0) ++t.sessions;
  }
  return t;
}

void copy_tree(const std::string& src, const std::string& dst) {
  fs::create_directories(dst);
  fs::copy(src, dst, fs::copy_options::recursive | fs::copy_options::overwrite_existing);
}

serve::ServeOptions base_options(const std::string& root, const std::string& model_path) {
  serve::ServeOptions opt;
  opt.root = root;
  opt.model_path = model_path;
  opt.jobs = 2;
  opt.poll_ms = 1;
  opt.checkpoint_every_ticks = 2;
  opt.drain_on_empty = true;
  opt.handle_signals = false;  // the soak drives stop conditions itself
  opt.max_ticks = 500;         // safety bound; every phase asserts it drained early
  opt.shard.quotas.max_records_per_tick = 700;  // several ticks per tenant
  opt.shard.quotas.max_files_per_tick = 4;      // keeps storm ticks garbage-dense
  return opt;
}

serve::ServeSummary run_daemon(const serve::ServeOptions& opt) {
  serve::ServeDaemon daemon(opt);
  return daemon.run();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::size_t gen_jobs = 2;
  std::string workdir;
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) std::exit(usage());
      return argv[++i];
    };
    if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--workdir") workdir = next();
    else if (arg == "--jobs") gen_jobs = std::stoul(next());
    else if (arg == "--keep") keep = true;
    else return usage();
  }
  if (workdir.empty()) {
    workdir = (fs::temp_directory_path() / ("intellog_serve_soak_" + std::to_string(seed)))
                  .string();
  }
  fs::remove_all(workdir);
  fs::create_directories(workdir);

  obs::MetricsRegistry registry;
  obs::set_registry(&registry);

  // --- 1. spools + model -----------------------------------------------------
  const std::vector<std::string> tenant_names = {"alpha", "beta", "gamma"};
  const std::string seed_root = workdir + "/seed_spools";
  std::map<std::string, SpoolTruth> truth;
  for (std::size_t i = 0; i < tenant_names.size(); ++i) {
    make_spool(seed_root + "/" + tenant_names[i], seed * 10 + i, gen_jobs);
  }
  const std::string model_path = workdir + "/model.json";
  {
    const auto train = logparse::read_log_directory_resilient(seed_root);
    check(!train.sessions.empty(), "seed spools produced no sessions");
    core::IntelLog model;
    model.train(train.sessions);
    core::save_model_file(model, model_path);
  }
  for (const auto& t : tenant_names) truth[t] = spool_truth(seed_root + "/" + t);

  // --- 2. uninterrupted multi-tenant run ------------------------------------
  const std::string root_base = workdir + "/root_base";
  copy_tree(seed_root, root_base);
  const auto base = run_daemon(base_options(root_base, model_path));
  check(!base.killed && base.ticks < 500, "uninterrupted run did not drain");
  for (const auto& t : tenant_names) {
    const auto& acc = base.tenants.at(t);
    const SpoolTruth& tr = truth.at(t);
    check(acc.records_admitted == tr.records,
          t + ": admitted " + std::to_string(acc.records_admitted) + " records, spool holds " +
              std::to_string(tr.records));
    check(acc.sessions_closed == tr.sessions,
          t + ": closed " + std::to_string(acc.sessions_closed) + " sessions, spool holds " +
              std::to_string(tr.sessions));
    check(acc.files_done == tr.files,
          t + ": finished " + std::to_string(acc.files_done) + " files, spool holds " +
              std::to_string(tr.files));
    check(acc.files_shed == 0 && acc.breaker_trips == 0,
          t + ": clean spool shed files or tripped the breaker");
  }

  // --- 3. kill-and-resume ----------------------------------------------------
  const std::string root_kill = workdir + "/root_kill";
  copy_tree(seed_root, root_kill);
  auto kill_opt = base_options(root_kill, model_path);
  kill_opt.kill_after_ticks = 1 + seed % 5;  // kill mid-flight, seed-derived
  const auto killed = run_daemon(kill_opt);
  check(killed.killed, "kill_after_ticks did not kill the daemon");
  const auto resumed = run_daemon(base_options(root_kill, model_path));
  check(!resumed.killed && resumed.ticks < 500, "resumed run did not drain");
  for (const auto& t : tenant_names) {
    std::string why;
    check(accounting_eq(resumed.tenants.at(t), base.tenants.at(t), &why),
          t + ": kill-and-resume accounting differs from uninterrupted run (" + why + ")");
  }

  // --- 4. corrupt-checkpoint recovery ---------------------------------------
  {
    const std::string ckpt = serve::ServeDaemon::checkpoint_path(root_kill + "/alpha");
    check(fs::exists(ckpt), "drained run left no checkpoint for alpha");
    {
      std::fstream f(ckpt, std::ios::in | std::ios::out);
      f.seekp(static_cast<std::streamoff>(fs::file_size(ckpt) / 2));
      f.put('!');  // flip a byte mid-document: the checksum must catch it
    }
    const auto recovered = run_daemon(base_options(root_kill, model_path));
    check(recovered.checkpoints_corrupt == 1,
          "tampered checkpoint was not detected (corrupt count " +
              std::to_string(recovered.checkpoints_corrupt) + ")");
    check(fs::exists(ckpt + ".corrupt"), "tampered checkpoint was not set aside");
    std::string why;
    check(accounting_eq(recovered.tenants.at("alpha"), base.tenants.at("alpha"), &why),
          "alpha: replay after corrupt checkpoint differs from uninterrupted run (" + why +
              ")");
  }

  // --- 5. quarantine-storm isolation ----------------------------------------
  // Solo baselines first: each quiet tenant alone, same knobs, for a
  // latency yardstick that already includes this machine's noise.
  std::map<std::string, double> solo_us;
  for (const auto& t : tenant_names) {
    const std::string solo_root = workdir + "/solo_" + t;
    copy_tree(seed_root + "/" + t, solo_root + "/" + t);
    const auto solo = run_daemon(base_options(solo_root, model_path));
    solo_us[t] = mean_consume_us(solo.tenants.at(t));
  }

  const std::string root_storm = workdir + "/root_storm";
  copy_tree(seed_root, root_storm);
  {
    // Flood gamma: corrupted copies of its own spool plus raw binary files.
    const std::string noisy = root_storm + "/gamma";
    simsys::LogStreamCorruptor corruptor(simsys::CorruptionSpec::all(0.8), seed);
    corruptor.corrupt_directory(seed_root + "/gamma", workdir + "/storm_debris");
    for (const auto& e : fs::directory_iterator(workdir + "/storm_debris")) {
      if (e.path().extension() != ".log") continue;
      fs::copy(e.path(), noisy + "/storm_" + e.path().filename().string(),
               fs::copy_options::overwrite_existing);
    }
    // Enough contiguous (by sort order) garbage files that at least one
    // tick reads nothing but garbage, whatever the record budget left over.
    for (int i = 0; i < 8; ++i) {
      std::ofstream out(noisy + "/garbage_" + std::to_string(i) + ".log");
      for (int l = 0; l < 300; ++l) out << "\x01\x02\xfe garbage \x03 line \xff\n";
    }
  }
  const auto storm = run_daemon(base_options(root_storm, model_path));
  check(!storm.killed && storm.ticks < 500, "storm run did not drain");
  check(storm.tenants.at("gamma").breaker_trips >= 1,
        "garbage flood did not trip gamma's breaker");
  check(fs::exists(root_storm + "/gamma/.quarantine.jsonl"),
        "storm left no quarantine ledger for gamma");
  for (const auto& t : {std::string("alpha"), std::string("beta")}) {
    const auto& acc = storm.tenants.at(t);
    check(acc.breaker_trips == 0, t + ": quiet tenant's breaker tripped during the storm");
    std::string why;
    check(accounting_eq(acc, base.tenants.at(t), &why),
          t + ": accounting degraded by another tenant's storm (" + why + ")");
    // Isolation in latency terms: within 2x of the solo baseline, with an
    // absolute floor so sub-microsecond baselines don't amplify noise.
    const double solo = std::max(solo_us.at(t), 50.0);
    const double multi = mean_consume_us(acc);
    check(multi <= 2.0 * solo,
          t + ": consume latency " + std::to_string(multi) + "us vs solo baseline " +
              std::to_string(solo_us.at(t)) + "us (floor 50us, budget 2x)");
  }

  // --- 6. parse-bomb shedding ------------------------------------------------
  {
    const std::string root_bomb = workdir + "/root_bomb";
    copy_tree(seed_root + "/alpha", root_bomb + "/bomb");
    // The guard must sit above the largest legitimate session file, and the
    // bomb clearly above the guard.
    std::uint64_t largest_clean = 0;
    for (const auto& e : fs::directory_iterator(root_bomb + "/bomb")) {
      if (e.is_regular_file()) largest_clean = std::max(largest_clean, fs::file_size(e));
    }
    const std::uint64_t guard = largest_clean + 64 * 1024;
    {
      std::ofstream out(root_bomb + "/bomb/aa_bomb.log");  // sorts first
      std::uint64_t written = 0;
      for (int i = 0; written < guard + 128 * 1024; ++i) {
        const std::string line = "payload line " + std::to_string(i) + " padding padding\n";
        out << line;
        written += line.size();
      }
    }
    auto bomb_opt = base_options(root_bomb, model_path);
    bomb_opt.shard.quotas.max_file_bytes = guard;
    const auto bomb = run_daemon(bomb_opt);
    check(!bomb.killed && bomb.ticks < 500, "parse-bomb run did not drain");
    const auto& acc = bomb.tenants.at("bomb");
    check(acc.files_shed == 1 && acc.bytes_shed > guard,
          "oversized file was not shed whole (shed " + std::to_string(acc.files_shed) +
              " files, " + std::to_string(acc.bytes_shed) + " bytes)");
    check(acc.breaker_trips >= 1, "parse-bomb shed did not trip the breaker");
    check(acc.records_admitted == base.tenants.at("alpha").records_admitted &&
              acc.sessions_closed == base.tenants.at("alpha").sessions_closed,
          "bomb tenant's clean files did not complete after the breaker reclosed");
    std::ifstream shed(root_bomb + "/bomb/.shed.jsonl");
    std::string shed_line;
    std::getline(shed, shed_line);
    check(shed_line.find("parse-bomb") != std::string::npos &&
              shed_line.find("aa_bomb.log") != std::string::npos,
          "shed ledger is missing the parse-bomb provenance: " + shed_line);
  }

  // --- 7. wedged-shard supervision ------------------------------------------
  {
    const std::string root_wedge = workdir + "/root_wedge";
    copy_tree(seed_root, root_wedge);
    auto wedge_opt = base_options(root_wedge, model_path);
    // The deadline must sit far above a healthy tick even under ASan/UBSan
    // (sanitized detect ticks run tens-of-ms), and the wedge far above the
    // deadline so the miss is unambiguous on a loaded CI runner.
    wedge_opt.heartbeat_timeout_ms = 750;
    wedge_opt.fault_hook = [](const std::string& tenant, std::uint64_t tick) {
      if (tenant == "beta" && tick == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3000));
      }
    };
    const auto wedge = run_daemon(wedge_opt);
    check(!wedge.killed && wedge.ticks < 500, "wedge run did not drain");
    check(wedge.restarts.at("beta") >= 1, "watchdog did not restart the wedged shard");
    check(wedge.restarts.at("alpha") == 0 && wedge.restarts.at("gamma") == 0,
          "watchdog restarted healthy shards");
    std::string why;
    check(accounting_eq(wedge.tenants.at("beta"), base.tenants.at("beta"), &why),
          "beta: accounting after wedge + in-process restart differs (" + why + ")");
  }

  obs::set_registry(nullptr);

  std::cerr << "serve soak seed=" << seed << ": base " << base.ticks << " ticks, "
            << base.checkpoints_written << " checkpoints; storm tripped gamma "
            << storm.tenants.at("gamma").breaker_trips << "x\n";
  if (!keep) fs::remove_all(workdir);
  if (g_failed) {
    std::cerr << "SERVE SOAK FAILED (seed " << seed << ")\n";
    return 1;
  }
  std::cerr << "serve soak passed (seed " << seed << ")\n";
  return 0;
}
