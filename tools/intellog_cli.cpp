// intellog — command-line front end for the pipeline.
//
//   intellog train  <logdir> -o model.json            build a model from
//                                                     fault-free log files
//   intellog detect <logdir> -m model.json [--json]   analyze new sessions
//   intellog graph  -m model.json [--dot|--json]      inspect the HW-graph
//   intellog keys   -m model.json                     list Intel Keys
//   intellog stats  <logdir> -m model.json [--json]   pipeline metrics
//   intellog quarantine <logdir> [--json]             lines the hardened
//                                                     ingester refused
//
// Workflow Observatory commands:
//   intellog export-trace <logdir> -m model [-o trace.json] [--otlp f]
//       reconstructed HW-graph instances as span trees (Chrome trace /
//       OTLP-style JSON) — load the trace in https://ui.perfetto.dev
//   intellog explain <report.json|logdir> -m model [--json]
//       expected-vs-observed diffs with raw-line provenance for every
//       finding; accepts a saved `detect --json` report or a log dir
//   intellog top <status.json>
//       renders a --status-file snapshot (live streaming introspection)
//
// Performance Observatory:
//   intellog profile [-o <prefix>] <cmd> [args...]
//       runs any subcommand under the in-process sampling profiler;
//       `--profile <out>` on the subcommand itself is equivalent. Writes
//       collapsed stacks (<out>, CPU samples; <out>.alloc, allocation
//       bytes) for flamegraph.pl / speedscope, plus <out>.pprof.json.
//
// `detect --checkpoint <file>` switches to streaming mode: records feed an
// OnlineDetector one by one, the detector state plus a stream cursor is
// written to <file> every --checkpoint-every records (atomic rename), and
// a restarted run resumes from the checkpoint instead of re-reporting
// sessions it already finished. The checkpoint is removed on completion.
// `--status-file <f>` and `--metrics-interval <sec>` also stream: the
// detector publishes a status snapshot / metrics file periodically with
// the same atomic-rename discipline as checkpoints.
//
// `train`, `detect` and `stats` accept `--metrics <file>` (snapshot of the
// pipeline metrics registry; `.prom`/`.txt` -> Prometheus text, otherwise
// JSON) and `--trace <file>` (Chrome trace-event JSON — load it in
// https://ui.perfetto.dev or about://tracing).
//
// Log directories hold one `<container_id>.log` file per session (any mix
// of the supported formats; auto-detected per file). `tools/loggen`
// produces compatible datasets from the simulators.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/explain.hpp"
#include "core/message_store.hpp"
#include "obs/profile/profile.hpp"
#include "core/model_diff.hpp"
#include "core/model_io.hpp"
#include "core/online.hpp"
#include "core/query.hpp"
#include "core/scoring.hpp"
#include "logparse/log_io.hpp"
#include "obs/export/status.hpp"
#include "obs/export/trace_export.hpp"
#include "obs/http/admin.hpp"
#include "obs/http/http.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries/alerts.hpp"
#include "obs/timeseries/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/daemon.hpp"
#include "serve/signals.hpp"

using namespace intellog;

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  intellog train  <logdir> -o <model.json> [--metrics <f>] [--trace <f>]\n"
               "  intellog detect <logdir> -m <model.json> [--json] [--jobs N] [--metrics <f>]"
               " [--trace <f>]\n"
               "                  [--checkpoint <f> [--checkpoint-every N]]\n"
               "  intellog stats  <logdir> -m <model.json> [--json] [--jobs N] [--metrics <f>]"
               " [--trace <f>]\n"
               "  intellog graph  -m <model.json> [--dot|--json|--critical]\n"
               "  intellog keys   -m <model.json>\n"
               "  intellog query  <logdir> -m <model.json> -q '<expr>' [--json]\n"
               "      expr: e.g. 'id.FETCHER=1 AND locality~host1', 'key=12 OR value>1000'\n"
               "  intellog quarantine <logdir> [--json] [--metrics <f>]\n"
               "      list lines the hardened ingester quarantined (exit 3 when any)\n"
               "  intellog export-trace <logdir> -m <model.json> [-o <trace.json>] [--otlp <f>]\n"
               "      export HW-graph instances as span trees (Chrome trace / OTLP JSON)\n"
               "  intellog explain <report.json|logdir> -m <model.json> [--json]\n"
               "      expected-vs-observed explanation with raw-line provenance per finding\n"
               "  intellog top <status.json> | top --connect <HOST:PORT> [--timeout-ms N]\n"
               "      render a --status-file snapshot, or fetch /status.json from a\n"
               "      --listen admin plane and render the same view (exit 2 when the\n"
               "      host does not answer within the deadline, default 2000ms)\n"
               "  intellog healthcheck <HOST:PORT> [--timeout-ms N]\n"
               "      probe /readyz on a --listen admin plane; exit 0 ready, 1 degraded\n"
               "      (503 + reasons), 2 unreachable within the deadline (default 2000ms)\n"
               "  intellog flight decode <blackbox.bin> [--json|--trace]\n"
               "      decode a flight-recorder dump (--blackbox) into a merged\n"
               "      time-ordered event log (default annotated text; --json machine\n"
               "      form; --trace Chrome trace-event JSON for Perfetto)\n"
               "  intellog serve <root> -m <model.json> [--jobs N] [--status-file <f>]\n"
               "      [--metrics <f>] [--alert-rules <f>] [--listen <HOST:PORT>]\n"
               "      [--poll-ms N] [--max-ticks N]\n"
               "      [--drain-on-empty] [--checkpoint-ticks N] [--heartbeat-ms N]\n"
               "      [--records-per-tick N] [--backlog-files N] [--max-file-bytes N]\n"
               "      [--breaker-open-ticks N] [--blackbox <f>]\n"
               "      multi-tenant daemon: each subdirectory of <root> is a tenant spool\n"
               "      (drop <container>.log files in; <tenant>/model.json overrides -m).\n"
               "      Per-tenant quotas, circuit breakers, CRC32 checkpoints; SIGTERM\n"
               "      drains gracefully. Reports append to <tenant>/.reports.jsonl\n"
               "  intellog profile [-o <prefix>] <cmd> [args...]\n"
               "      run any subcommand under the sampling profiler; writes <prefix>\n"
               "      (collapsed stacks for flamegraph.pl/speedscope), <prefix>.alloc\n"
               "      (same, weighted by alloc bytes) and <prefix>.pprof.json\n"
               "      (default prefix: intellog.prof)\n"
               "  intellog coverage <logdir> -m <model.json> [--json] [--jobs N]\n"
               "      which model components this workload exercises (dead/stale report)\n"
               "  intellog diff-model <modelA.json> <modelB.json> [--json]\n"
               "      structural model diff with a scalar drift score (0 = identical)\n"
               "  intellog score <report.json>... --labels <labels.json>... [--json]\n"
               "      precision/recall/F1 of detect --json report(s) vs loggen ground\n"
               "      truth; pass one --labels per report (pairs match in order)\n"
               "  --jobs:    worker threads for batch detection (0 = hardware concurrency)\n"
               "  --metrics: write a metrics snapshot (.prom/.txt -> Prometheus text, else JSON)\n"
               "  --trace:   write Chrome trace-event JSON (open in Perfetto)\n"
               "  --checkpoint: stream records through the online detector, checkpointing\n"
               "      state to <f> every N records (default 1000); resumes if <f> exists\n"
               "  --status-file <f>: (detect) publish a live status snapshot (atomic rename)\n"
               "  --metrics-interval <sec>: (detect) flush --metrics/--status-file every\n"
               "      <sec> seconds while streaming\n"
               "  --alert-rules <f>: (detect, streaming) JSON alert rules evaluated over\n"
               "      windowed telemetry at each flush; default: built-in self-monitoring\n"
               "      rules (quarantine burst, evictions, unexpected-key rate, degraded)\n"
               "  --coverage <f>: (detect) stamp the model coverage ledger during the run\n"
               "      and write the coverage report JSON to <f>\n"
               "  --listen <HOST:PORT>: (serve, streaming detect) embedded HTTP admin\n"
               "      plane — /metrics (Prometheus), /status.json, /tenants, /alerts,\n"
               "      /healthz, /readyz, /profilez?seconds=N; port 0 binds ephemeral\n"
               "      (resolved address is logged to stderr)\n"
               "  --profile <out>: profile this command (same outputs as `intellog\n"
               "      profile`); INTELLOG_PROF_PERIOD_US overrides the sample period\n"
               "  --blackbox <f>: (serve, streaming detect) always-on flight recorder;\n"
               "      fatal signals, graceful drains and watchdog restarts dump the\n"
               "      per-thread event rings to <f> (prior dump rotates to <f>.1) —\n"
               "      read with `intellog flight decode <f>` or GET /flightz live\n";
  return 2;
}

struct Args {
  std::string command, logdir, model_path, output_path, query_text;
  std::string logdir2;                  ///< second positional (diff-model)
  std::vector<std::string> positionals; ///< third and later (score reports)
  std::vector<std::string> labels_paths; ///< score: loggen ground-truth sidecars
  std::string coverage_path;            ///< detect: write coverage report here
  std::string metrics_path, trace_path;
  std::string checkpoint_path;          ///< detect: streaming checkpoint file
  std::string status_path;              ///< detect: live status snapshot file
  std::string alert_rules_path;         ///< detect: custom alert rules (JSON)
  std::string otlp_path;                ///< export-trace: OTLP JSON output
  std::string profile_path;             ///< profiler output prefix (empty: off)
  std::string listen;                   ///< serve/detect: HTTP admin plane HOST:PORT
  std::string connect;                  ///< top: fetch /status.json from HOST:PORT
  std::string blackbox;                 ///< serve/detect: flight-recorder dump file
  std::uint64_t timeout_ms = 2000;      ///< top --connect / healthcheck deadline
  double metrics_interval_s = 0;        ///< detect: periodic flush period (0: off)
  std::size_t checkpoint_every = 1000;  ///< records between checkpoints
  std::size_t jobs = 1;  ///< batch-detect workers; 0 = hardware concurrency
  // serve knobs (defaults mirror serve::ServeOptions / TenantQuotas)
  std::uint64_t poll_ms = 50;            ///< serve: idle sleep between ticks
  std::uint64_t max_ticks = 0;           ///< serve: drain after N ticks (0: run on)
  std::uint64_t kill_after_ticks = 0;    ///< serve: simulated crash (soak/testing)
  std::uint64_t checkpoint_ticks = 8;    ///< serve: ticks between checkpoints
  std::uint64_t heartbeat_ms = 2000;     ///< serve: wedged-shard deadline
  std::size_t records_per_tick = 5000;   ///< serve: per-tenant admission quota
  std::size_t backlog_files = 1024;      ///< serve: pending files before shedding
  std::uint64_t max_file_bytes = 32u << 20;  ///< serve: parse-bomb guard
  std::uint64_t breaker_open_ticks = 4;  ///< serve: breaker pause length
  bool drain_on_empty = false;           ///< serve: exit once all tenants idle
  bool json = false, dot = false, critical_only = false;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Installs a metrics registry and/or trace collector for the duration of a
/// command and writes the requested output files on destruction. The
/// registry is installed whenever metrics output is wanted OR the command
/// itself consumes the snapshot (`stats`).
class ObsScope {
 public:
  ObsScope(const Args& args, bool force_metrics)
      : metrics_path_(args.metrics_path), trace_path_(args.trace_path) {
    if (!metrics_path_.empty() || force_metrics) obs::set_registry(&registry_);
    if (!trace_path_.empty()) obs::set_tracer(&trace_);
  }

  ~ObsScope() {
    obs::set_registry(nullptr);
    obs::set_tracer(nullptr);
    if (!metrics_path_.empty()) {
      std::ofstream f(metrics_path_);
      if (ends_with(metrics_path_, ".prom") || ends_with(metrics_path_, ".txt")) {
        f << registry_.to_prometheus();
      } else {
        f << registry_.to_json().dump(2) << "\n";
      }
      if (f.flush(); f) {
        std::cerr << "metrics (" << registry_.size() << " series) -> " << metrics_path_ << "\n";
      } else {
        std::cerr << "error: cannot write metrics to " << metrics_path_ << "\n";
      }
    }
    if (!trace_path_.empty()) {
      std::ofstream f(trace_path_);
      f << trace_.to_chrome_json().dump() << "\n";
      if (f.flush(); f) {
        std::cerr << "trace (" << trace_.size() << " spans) -> " << trace_path_ << "\n";
      } else {
        std::cerr << "error: cannot write trace to " << trace_path_ << "\n";
      }
    }
  }

  obs::MetricsRegistry& registry() { return registry_; }

 private:
  obs::MetricsRegistry registry_;
  obs::TraceCollector trace_;
  std::string metrics_path_, trace_path_;
};

/// Performance Observatory session for one CLI command (`--profile <out>` or
/// the `intellog profile` wrapper). Installs the in-process sampling profiler
/// for the command's duration; finish() stops it and writes three artifacts:
///   <out>             collapsed stacks, weight = CPU samples (flamegraph.pl,
///                     speedscope)
///   <out>.alloc       collapsed stacks, weight = attributed alloc bytes
///   <out>.pprof.json  pprof-style JSON (totals, per-path rows, lock table)
/// plus a hot-frame table on stderr. Must be destroyed only after profiled
/// threads have quiesced — command functions join their pools before
/// returning, and finish() runs after the command.
class ProfileSession {
 public:
  explicit ProfileSession(std::string out_prefix)
      : out_(std::move(out_prefix)), profiler_(obs::ProfilerOptions::from_env()) {}

  ~ProfileSession() {
    try {
      finish();
    } catch (const std::exception& e) {
      std::cerr << "error: profile output failed: " << e.what() << "\n";
    }
  }

  void finish() {
    if (done_) return;
    done_ = true;
    profiler_.stop();
    write_text(out_, profiler_.collapsed());
    write_text(out_ + ".alloc", profiler_.collapsed_alloc());
    obs::write_json_atomic(profiler_.to_json(), out_ + ".pprof.json");
    std::cerr << "profile: " << profiler_.total_samples() << " samples over "
              << profiler_.duration_ms() << " ms, " << profiler_.total_alloc_bytes()
              << " bytes / " << profiler_.total_allocs() << " allocs attributed -> " << out_
              << "{,.alloc,.pprof.json}\n"
              << profiler_.hot_table(10);
  }

 private:
  static void write_text(const std::string& path, const std::string& text) {
    std::ofstream f(path);
    f << text;
    if (f.flush(); !f) throw std::runtime_error("cannot write " + path);
  }

  std::string out_;
  obs::Profiler profiler_;
  bool done_ = false;
};

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "-m") {
      const char* v = next();
      if (!v) return false;
      args.model_path = v;
    } else if (a == "-o") {
      const char* v = next();
      if (!v) return false;
      args.output_path = v;
    } else if (a == "-q") {
      const char* v = next();
      if (!v) return false;
      args.query_text = v;
    } else if (a == "--metrics") {
      const char* v = next();
      if (!v) return false;
      args.metrics_path = v;
    } else if (a == "--trace") {
      const char* v = next();
      if (!v) return false;
      args.trace_path = v;
    } else if (a == "--jobs") {
      const char* v = next();
      if (!v) return false;
      try {
        args.jobs = static_cast<std::size_t>(std::stoul(v));
      } catch (const std::exception&) {
        return false;
      }
    } else if (a == "--checkpoint") {
      const char* v = next();
      if (!v) return false;
      args.checkpoint_path = v;
    } else if (a == "--status-file") {
      const char* v = next();
      if (!v) return false;
      args.status_path = v;
    } else if (a == "--alert-rules") {
      const char* v = next();
      if (!v) return false;
      args.alert_rules_path = v;
    } else if (a == "--labels") {
      const char* v = next();
      if (!v) return false;
      args.labels_paths.emplace_back(v);
    } else if (a == "--coverage") {
      const char* v = next();
      if (!v) return false;
      args.coverage_path = v;
    } else if (a == "--otlp") {
      const char* v = next();
      if (!v) return false;
      args.otlp_path = v;
    } else if (a == "--profile") {
      const char* v = next();
      if (!v) return false;
      args.profile_path = v;
    } else if (a == "--listen") {
      const char* v = next();
      if (!v) return false;
      args.listen = v;
    } else if (a == "--connect") {
      const char* v = next();
      if (!v) return false;
      args.connect = v;
    } else if (a == "--blackbox") {
      const char* v = next();
      if (!v) return false;
      args.blackbox = v;
    } else if (a == "--metrics-interval") {
      const char* v = next();
      if (!v) return false;
      try {
        args.metrics_interval_s = std::stod(v);
      } catch (const std::exception&) {
        return false;
      }
      if (args.metrics_interval_s <= 0) return false;
    } else if (a == "--checkpoint-every") {
      const char* v = next();
      if (!v) return false;
      try {
        args.checkpoint_every = static_cast<std::size_t>(std::stoul(v));
      } catch (const std::exception&) {
        return false;
      }
      if (args.checkpoint_every == 0) return false;
    } else if (a == "--poll-ms" || a == "--max-ticks" || a == "--kill-after-ticks" ||
               a == "--checkpoint-ticks" || a == "--heartbeat-ms" ||
               a == "--records-per-tick" || a == "--backlog-files" ||
               a == "--max-file-bytes" || a == "--breaker-open-ticks" ||
               a == "--timeout-ms") {
      const char* v = next();
      if (!v) return false;
      std::uint64_t n = 0;
      try {
        n = std::stoull(v);
      } catch (const std::exception&) {
        return false;
      }
      if (a == "--poll-ms") args.poll_ms = n;
      else if (a == "--max-ticks") args.max_ticks = n;
      else if (a == "--kill-after-ticks") args.kill_after_ticks = n;
      else if (a == "--checkpoint-ticks") args.checkpoint_ticks = n;
      else if (a == "--heartbeat-ms") args.heartbeat_ms = n;
      else if (a == "--records-per-tick") args.records_per_tick = static_cast<std::size_t>(n);
      else if (a == "--backlog-files") args.backlog_files = static_cast<std::size_t>(n);
      else if (a == "--max-file-bytes") args.max_file_bytes = n;
      else if (a == "--timeout-ms") args.timeout_ms = n;
      else args.breaker_open_ticks = n;
    } else if (a == "--drain-on-empty") {
      args.drain_on_empty = true;
    } else if (a == "--json") {
      args.json = true;
    } else if (a == "--dot") {
      args.dot = true;
    } else if (a == "--critical") {
      args.critical_only = true;
    } else if (!a.empty() && a[0] != '-' && args.logdir.empty()) {
      args.logdir = a;
    } else if (!a.empty() && a[0] != '-' && args.logdir2.empty()) {
      args.logdir2 = a;  // second positional (diff-model B)
    } else if (!a.empty() && a[0] != '-') {
      args.positionals.push_back(a);  // third+ (score: more reports)
    } else {
      return false;
    }
  }
  return true;
}

int cmd_train(const Args& args) {
  if (args.logdir.empty() || args.output_path.empty()) return usage();
  ObsScope obs_scope(args, /*force_metrics=*/false);
  std::cerr << "reading " << args.logdir << "...\n";
  const auto sessions = logparse::read_log_directory(args.logdir);
  if (sessions.empty()) {
    std::cerr << "no parseable .log files found\n";
    return 1;
  }
  std::size_t lines = 0;
  for (const auto& s : sessions) lines += s.records.size();
  std::cerr << "training on " << sessions.size() << " sessions (" << lines << " lines)...\n";
  core::IntelLog il;
  il.train(sessions);
  core::save_model_file(il, args.output_path);
  std::cerr << "model: " << il.spell().size() << " log keys, " << il.intel_keys().size()
            << " Intel Keys, " << il.entity_groups().groups.size() << " entity groups ("
            << il.hw_graph().critical_group_count() << " critical) -> " << args.output_path
            << "\n";
  return 0;
}

void print_report_text(const core::AnomalyReport& report) {
  std::cout << "ANOMALY " << report.container_id << " (" << report.session_length << " lines)";
  if (report.degraded()) std::cout << " [degraded: " << report.degraded_reason << "]";
  std::cout << "\n";
  for (const auto& u : report.unexpected) {
    std::cout << "  unexpected: " << u.content << "\n";
    for (const auto& iv : u.message.identifiers) {
      std::cout << "      id " << iv.type << "=" << iv.value << "\n";
    }
    for (const auto& loc : u.message.localities) {
      std::cout << "      locality " << loc << "\n";
    }
  }
  for (const auto& i : report.issues) {
    std::cout << "  " << to_string(i.kind) << " in group '" << i.group << "'";
    if (!i.missing_keys.empty()) {
      std::cout << " missing keys:";
      for (const int k : i.missing_keys) std::cout << " " << k;
    }
    std::cout << "\n";
  }
}

// Streaming detect with durable progress (--checkpoint): hardened ingestion
// feeds an OnlineDetector record by record; every --checkpoint-every records
// the detector state plus a stream cursor is persisted (atomic rename via
// checkpoint_file semantics), so a killed run resumes from the last
// checkpoint instead of starting over or double-reporting.
int cmd_detect_stream(const Args& args) {
  // Status snapshots read the metrics registry, so streaming with
  // introspection enabled forces one even without --metrics.
  ObsScope obs_scope(args,
                     /*force_metrics=*/!args.status_path.empty() ||
                         args.metrics_interval_s > 0 || !args.listen.empty());
  // --blackbox: always-on flight recorder with a crash-time post-mortem
  // dump. Enabled before any ingest/detect work so the journal covers the
  // whole run; the scoped dump snapshots the rings on clean exit too.
  std::unique_ptr<obs::flight::ScopedFlightDump> blackbox_dump;
  if (!args.blackbox.empty()) {
    obs::flight::flight_enable();
    if (!obs::flight::flight_set_dump_path(args.blackbox)) {
      throw std::runtime_error("cannot open blackbox file: " + args.blackbox);
    }
    serve::install_crash_signals();
    blackbox_dump = std::make_unique<obs::flight::ScopedFlightDump>(
        obs::flight::DumpReason::kGracefulDrain);
  }
  const bool use_checkpoint = !args.checkpoint_path.empty();
  const core::IntelLog il = core::load_model_file(args.model_path);
  if (obs::MetricsRegistry* reg = obs::registry()) il.record_model_metrics(*reg);
  if (!args.coverage_path.empty()) il.set_coverage_enabled(true);
  const auto ingest = logparse::read_log_directory_resilient(args.logdir);
  if (ingest.stats.quarantined > 0) {
    std::cerr << "warning: " << ingest.stats.quarantined
              << " lines quarantined (see `intellog quarantine " << args.logdir << "`)\n";
  }

  std::uint64_t cursor = 0;
  std::unique_ptr<core::OnlineDetector> online;
  if (use_checkpoint && std::filesystem::exists(args.checkpoint_path)) {
    std::ifstream in(args.checkpoint_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    common::Json wrapper;
    try {
      wrapper = common::Json::parse(buf.str());
    } catch (const std::exception& e) {
      throw std::runtime_error("checkpoint " + args.checkpoint_path +
                               " is not valid JSON (torn write?): " + e.what());
    }
    if (!wrapper.is_object() || !wrapper.contains("cursor") || !wrapper.contains("detector")) {
      throw std::runtime_error("checkpoint " + args.checkpoint_path +
                               ": not an intellog stream checkpoint");
    }
    cursor = static_cast<std::uint64_t>(wrapper["cursor"].as_int());
    online = std::make_unique<core::OnlineDetector>(
        core::OnlineDetector::restore(il, wrapper["detector"], args.jobs));
    std::cerr << "resumed from " << args.checkpoint_path << " at record " << cursor << "\n";
  } else {
    online = std::make_unique<core::OnlineDetector>(il, args.jobs);
  }

  // --listen: the same live admin plane `serve` mounts, over this run's
  // detector. Handlers only read registry snapshots and the board, so the
  // consume loop never blocks on a scraper.
  std::unique_ptr<obs::http::StatusBoard> board;
  std::unique_ptr<obs::http::HttpServer> http;
  if (!args.listen.empty()) {
    const auto [host, port] = obs::http::split_host_port(args.listen);
    obs::http::HttpServer::Options hopts;
    hopts.host = host;
    hopts.port = port;
    board = std::make_unique<obs::http::StatusBoard>();
    http = std::make_unique<obs::http::HttpServer>(hopts);
    obs::http::mount_admin_plane(*http, *board);
    http->start();
    std::cerr << "intellog detect: admin plane listening on http://" << host << ":"
              << http->port() << "\n";
  }

  std::uint64_t last_checkpoint_ns = 0;
  const auto write_checkpoint = [&](std::uint64_t at) {
    common::Json wrapper = common::Json::object();
    wrapper["kind"] = "intellog_cli_checkpoint";
    wrapper["cursor"] = static_cast<std::int64_t>(at);
    wrapper["detector"] = online->checkpoint();
    const std::string tmp = args.checkpoint_path + ".tmp";
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("cannot write checkpoint " + tmp);
    out << wrapper.dump() << "\n";
    out.flush();
    if (!out) throw std::runtime_error("short write on checkpoint " + tmp);
    out.close();
    std::filesystem::rename(tmp, args.checkpoint_path);
    last_checkpoint_ns = obs::monotonic_ns();
  };

  // Windowed telemetry + self-monitoring alerts: every flush samples the
  // registry into a bounded ring-buffer store and evaluates the alert
  // rules over it; firing alerts land in the status snapshot (and `top`).
  obs::ts::TimeSeriesStore tseries;
  obs::ts::AlertEngine alert_engine(
      args.alert_rules_path.empty()
          ? obs::ts::AlertEngine::default_rules()
          : obs::ts::AlertEngine::rules_from_json(common::Json::parse([&] {
              std::ifstream in(args.alert_rules_path);
              if (!in) {
                throw std::runtime_error("cannot read alert rules: " + args.alert_rules_path);
              }
              std::ostringstream buf;
              buf << in.rdbuf();
              return buf.str();
            }())));
  const auto observe_telemetry = [&] {
    const obs::MetricsRegistry* reg = obs::registry();
    if (!reg) return;
    const std::uint64_t now_ms = obs::monotonic_ns() / 1'000'000;
    tseries.observe_registry(*reg, now_ms);
    alert_engine.evaluate(tseries, now_ms);
  };

  // Live introspection (--status-file) and periodic metrics flushes
  // (--metrics-interval): both publish with the checkpoint's atomic-rename
  // discipline so a concurrent reader never sees a torn file.
  const auto flush_status = [&](std::uint64_t at) {
    if (args.status_path.empty() && !board) return;
    obs::StatusContext ctx;
    ctx.detector = online.get();
    ctx.registry = obs::registry();
    ctx.alerts = &alert_engine;
    ctx.profiler = obs::profiler();  // hot-frame table in `top`, if profiling
    ctx.checkpoint_path = args.checkpoint_path;
    ctx.checkpoint_age_s =
        last_checkpoint_ns == 0
            ? -1.0
            : static_cast<double>(obs::monotonic_ns() - last_checkpoint_ns) / 1e9;
    ctx.cursor = static_cast<std::int64_t>(at);
    const common::Json doc = obs::build_status(ctx);
    // A one-shot detect that is still consuming is ready by definition; the
    // interesting readiness states (breakers, backlog) belong to `serve`.
    if (board) board->publish(doc, obs::http::Readiness{});
    if (!args.status_path.empty()) obs::write_json_atomic(doc, args.status_path);
  };
  flush_status(cursor);  // the plane answers real state from the first scrape
  const auto flush_metrics = [&] {
    if (args.metrics_path.empty()) return;
    const obs::MetricsRegistry* reg = obs::registry();
    if (!reg) return;
    if (ends_with(args.metrics_path, ".prom") || ends_with(args.metrics_path, ".txt")) {
      const std::string tmp = args.metrics_path + ".tmp";
      std::ofstream out(tmp);
      out << reg->to_prometheus();
      out.flush();
      if (out) std::filesystem::rename(tmp, args.metrics_path);
    } else {
      obs::write_json_atomic(reg->to_json(), args.metrics_path);
    }
  };

  std::size_t anomalous = 0;
  common::Json reports = common::Json::array();
  const auto handle = [&](const core::AnomalyReport& report) {
    if (!report.anomalous()) return;
    ++anomalous;
    if (args.json) {
      reports.push_back(report.to_json());
    } else {
      print_report_text(report);
    }
  };

  const std::uint64_t interval_ns =
      static_cast<std::uint64_t>(args.metrics_interval_s * 1e9);
  std::uint64_t last_flush_ns = obs::monotonic_ns();

  // SIGTERM/SIGINT while streaming with a checkpoint means "flush a final
  // checkpoint at the current cursor, then exit" — the next run resumes
  // exactly where this one stopped. Without a checkpoint file the default
  // signal disposition (immediate exit) is the right behavior, so the
  // handler is only installed in checkpointing mode.
  if (use_checkpoint) serve::install_stop_signals();
  int stopped_by = 0;

  std::uint64_t idx = 0;
  for (const auto& s : ingest.sessions) {
    for (const auto& rec : s.records) {
      if (idx++ < cursor) continue;  // consumed by a previous (killed) run
      online->consume(rec);
      if (use_checkpoint && (stopped_by = serve::stop_signal()) != 0) break;
      if (use_checkpoint && idx % args.checkpoint_every == 0) write_checkpoint(idx);
      // Clock reads are amortized: the interval check runs every 256
      // records, which at any realistic rate is far below the interval.
      if (interval_ns != 0 && (idx & 0xFF) == 0) {
        const std::uint64_t now = obs::monotonic_ns();
        if (now - last_flush_ns >= interval_ns) {
          observe_telemetry();
          flush_metrics();
          flush_status(idx);
          last_flush_ns = now;
        }
      }
    }
    if (stopped_by != 0) break;
    // Session boundary: close if still open. A session finished AND closed
    // before the checkpoint was taken is absent from the restored state, so
    // close_session returns nullopt and it is not re-reported.
    if (const auto report = online->close_session(s.container_id)) handle(*report);
  }
  if (stopped_by != 0) {
    // Graceful stop: persist exactly what was consumed (the checkpoint file
    // stays for the resuming run) and publish final telemetry.
    write_checkpoint(idx);
    observe_telemetry();
    flush_metrics();
    flush_status(idx);
    std::cerr << "stopped by signal " << stopped_by << " after " << idx
              << " records; checkpoint -> " << args.checkpoint_path << "\n";
    return 128 + stopped_by;
  }
  for (const auto& report : online->close_all()) handle(report);
  // Empty sessions (zero-byte log files) carry no records, so the online
  // detector never sees them — but a container that died before logging a
  // single line is exactly the session-abort signature. Run their
  // structural check directly; a killed run never got this far, so a
  // resumed one cannot double-report them.
  for (const auto& s : ingest.sessions) {
    if (s.records.empty()) handle(il.detect(s));
  }
  observe_telemetry();
  flush_status(idx);  // final snapshot: zero open sessions, final counters

  if (args.json) {
    std::cout << reports.dump(2) << "\n";
  } else {
    std::cout << anomalous << " / " << ingest.sessions.size() << " sessions anomalous\n";
  }
  if (use_checkpoint) {
    std::error_code ec;
    std::filesystem::remove(args.checkpoint_path, ec);  // complete: nothing to resume
  }
  if (!args.coverage_path.empty() && il.coverage()) {
    obs::write_json_atomic(il.coverage()->to_json(), args.coverage_path);
    std::cerr << "coverage report -> " << args.coverage_path << "\n";
  }
  return anomalous > 0 ? 3 : 0;
}

int cmd_detect(const Args& args) {
  if (args.logdir.empty() || args.model_path.empty()) return usage();
  // Any of the streaming features routes through the online detector.
  if (!args.checkpoint_path.empty() || !args.status_path.empty() ||
      args.metrics_interval_s > 0 || !args.listen.empty()) {
    return cmd_detect_stream(args);
  }
  ObsScope obs_scope(args, /*force_metrics=*/false);
  const core::IntelLog il = core::load_model_file(args.model_path);
  if (obs::MetricsRegistry* reg = obs::registry()) il.record_model_metrics(*reg);
  if (!args.coverage_path.empty()) il.set_coverage_enabled(true);
  const auto sessions = logparse::read_log_directory(args.logdir);
  // Sharded batch detection (--jobs N; default 1 = serial). Reports come
  // back input-ordered, so the printed output is identical at any width.
  const std::vector<core::AnomalyReport> batch = il.detect_batch(sessions, args.jobs);
  std::size_t anomalous = 0;
  common::Json reports = common::Json::array();
  for (std::size_t si = 0; si < sessions.size(); ++si) {
    const core::AnomalyReport& report = batch[si];
    if (!report.anomalous()) continue;
    ++anomalous;
    if (args.json) {
      reports.push_back(report.to_json());
      continue;
    }
    print_report_text(report);
  }
  if (args.json) {
    std::cout << reports.dump(2) << "\n";
  } else {
    std::cout << anomalous << " / " << sessions.size() << " sessions anomalous\n";
  }
  if (!args.coverage_path.empty() && il.coverage()) {
    obs::write_json_atomic(il.coverage()->to_json(), args.coverage_path);
    std::cerr << "coverage report -> " << args.coverage_path << "\n";
  }
  return anomalous > 0 ? 3 : 0;  // nonzero exit when anomalies found
}

// Quality Observatory: structural diff of two persisted models. Compares
// everything model_io round-trips — log-key templates, Intel Keys, group
// membership, subroutines, HW-graph relations — and reports per-class
// churn plus the union-weighted drift score (0 = structurally identical).
int cmd_diff_model(const Args& args) {
  if (args.logdir.empty() || args.logdir2.empty()) return usage();
  const core::IntelLog a = core::load_model_file(args.logdir);
  const core::IntelLog b = core::load_model_file(args.logdir2);
  const core::ModelDiff diff = core::diff_models(a, b);
  if (args.json) {
    std::cout << diff.to_json().dump(2) << "\n";
  } else {
    std::cout << diff.render_text();
  }
  return 0;
}

// Quality Observatory: Table-6 accounting over a saved `detect --json`
// report and a `loggen --labels` ground-truth sidecar. Pass more
// report/--labels pairs (in order) to score several systems at once; the
// overall row aggregates them the way bench_table6_anomaly sums systems.
int cmd_score(const Args& args) {
  std::vector<std::string> report_paths;
  if (!args.logdir.empty()) report_paths.push_back(args.logdir);
  if (!args.logdir2.empty()) report_paths.push_back(args.logdir2);
  report_paths.insert(report_paths.end(), args.positionals.begin(), args.positionals.end());
  if (report_paths.empty() || args.labels_paths.empty()) return usage();
  if (report_paths.size() != args.labels_paths.size()) {
    std::cerr << "error: " << report_paths.size() << " report(s) but "
              << args.labels_paths.size() << " --labels file(s); pass one per report\n";
    return 2;
  }
  const auto read_json = [](const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot read " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return common::Json::parse(buf.str());
  };

  ObsScope obs_scope(args, /*force_metrics=*/false);
  core::ScoreCard card;
  for (std::size_t i = 0; i < report_paths.size(); ++i) {
    const core::Labels labels = core::Labels::from_json(read_json(args.labels_paths[i]));
    card.systems.push_back(score_report(labels, read_json(report_paths[i])));
  }
  if (obs::MetricsRegistry* reg = obs::registry()) card.record_metrics(*reg);
  if (args.json) {
    std::cout << card.to_json().dump(2) << "\n";
  } else {
    std::cout << card.render_text();
  }
  return 0;
}

// Quality Observatory: which model components does this workload actually
// exercise? Runs detection with the coverage ledger attached and reports,
// per component class (log keys, subroutines, HW-graph edges), the dead
// components (never hit — the first symptom of model drift) and the stale
// ones (hit, but far below their peers), plus the overall coverage ratio.
int cmd_coverage(const Args& args) {
  if (args.logdir.empty() || args.model_path.empty()) return usage();
  ObsScope obs_scope(args, /*force_metrics=*/false);
  const core::IntelLog il = core::load_model_file(args.model_path);
  if (obs::MetricsRegistry* reg = obs::registry()) il.record_model_metrics(*reg);
  il.set_coverage_enabled(true);
  const auto sessions = logparse::read_log_directory(args.logdir);
  il.detect_batch(sessions, args.jobs);
  const core::CoverageLedger* cov = il.coverage();
  if (obs::MetricsRegistry* reg = obs::registry()) cov->record_metrics(*reg);

  const common::Json report = cov->to_json();
  if (args.json) {
    std::cout << report.dump(2) << "\n";
    return 0;
  }
  std::cout << "model coverage: " << cov->hit_components() << " / " << cov->total_components()
            << " components exercised over " << sessions.size() << " session(s) (ratio "
            << cov->coverage_ratio() << ")\n";
  for (const char* cls : {"log_keys", "subroutines", "edges"}) {
    const common::Json& c = report["classes"][cls];
    std::cout << "  " << cls << ": " << c["hit"].as_int() << " / " << c["total"].as_int()
              << " hit";
    const auto& dead = c["dead"].as_array();
    const auto& stale = c["stale"].as_array();
    if (!dead.empty()) std::cout << ", " << dead.size() << " dead";
    if (!stale.empty()) std::cout << ", " << stale.size() << " stale";
    std::cout << "\n";
    const auto list = [](const char* tag, const std::vector<common::Json>& names) {
      constexpr std::size_t kMax = 20;  // keep the terminal report skimmable
      for (std::size_t i = 0; i < names.size() && i < kMax; ++i) {
        std::cout << "    " << tag << " " << names[i].as_string() << "\n";
      }
      if (names.size() > kMax) {
        std::cout << "    ... " << names.size() - kMax << " more (use --json)\n";
      }
    };
    list("dead:", dead);
    list("stale:", stale);
  }
  return 0;
}

// Shows every line the hardened ingester refused (with provenance: file,
// line number, byte offset, reason) plus the ingest summary — the operator's
// "what did chaos do to my logs" view.
int cmd_quarantine(const Args& args) {
  if (args.logdir.empty()) return usage();
  ObsScope obs_scope(args, /*force_metrics=*/false);
  const auto report = logparse::read_log_directory_resilient(args.logdir);
  const logparse::IngestStats& st = report.stats;

  // Quarantined text is raw input (that is often why it was quarantined);
  // keep terminals and the JSON encoder safe from control bytes.
  const auto printable = [](const std::string& s) {
    std::string out = s;
    for (char& c : out) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (u < 0x20 || u >= 0x7f) c = '.';
    }
    return out;
  };

  if (args.json) {
    common::Json j = common::Json::object();
    common::Json arr = common::Json::array();
    for (const auto& q : report.quarantined) {
      common::Json qj = common::Json::object();
      qj["file"] = q.file;
      qj["line"] = q.line_no;
      qj["byte_offset"] = q.byte_offset;
      qj["bytes"] = q.raw_bytes;
      qj["reason"] = q.reason;
      qj["text"] = printable(q.text);
      arr.push_back(std::move(qj));
    }
    j["quarantined"] = std::move(arr);
    common::Json sj = common::Json::object();
    sj["lines_total"] = st.lines_total;
    sj["records"] = st.records;
    sj["continuations"] = st.continuations;
    sj["quarantined"] = st.quarantined;
    sj["duplicates_dropped"] = st.duplicates_dropped;
    sj["reordered"] = st.reordered;
    sj["skipped_files"] = st.skipped_files;
    common::Json by = common::Json::object();
    for (const auto& [reason, n] : st.quarantined_by_reason) by[reason] = n;
    sj["quarantined_by_reason"] = std::move(by);
    j["stats"] = std::move(sj);
    std::cout << j.dump(2) << "\n";
  } else {
    for (const auto& q : report.quarantined) {
      std::cout << q.file << ":" << q.line_no << " (byte " << q.byte_offset << ", "
                << q.raw_bytes << " bytes) [" << q.reason << "] " << printable(q.text) << "\n";
    }
    std::cout << st.lines_total << " lines -> " << st.records << " records ("
              << st.continuations << " continuations); " << st.quarantined << " quarantined";
    if (!st.quarantined_by_reason.empty()) {
      std::cout << " (";
      bool first = true;
      for (const auto& [reason, n] : st.quarantined_by_reason) {
        if (!first) std::cout << ", ";
        first = false;
        std::cout << reason << "=" << n;
      }
      std::cout << ")";
    }
    std::cout << ", " << st.duplicates_dropped << " duplicates dropped, " << st.reordered
              << " reordered, " << st.skipped_files << " files skipped\n";
  }
  return st.quarantined > 0 ? 3 : 0;  // nonzero exit when anything was refused
}

int cmd_graph(const Args& args) {
  if (args.model_path.empty()) return usage();
  const core::IntelLog il = core::load_model_file(args.model_path);
  if (args.dot) {
    std::cout << il.hw_graph().to_dot();
    return 0;
  }
  if (args.json) {
    std::cout << il.hw_graph_json().dump(2) << "\n";
    return 0;
  }
  // §6.3: the critical view keeps only groups with multiple Intel Keys or
  // repeated keys; "users can also choose to obtain a comprehensive
  // HW-graph" — the default.
  const std::function<bool(const std::string&)> subtree_has_critical =
      [&](const std::string& g) {
        if (il.hw_graph().groups().at(g).is_critical()) return true;
        for (const auto& c : il.hw_graph().children_of(g)) {
          if (subtree_has_critical(c)) return true;
        }
        return false;
      };
  const std::function<void(const std::string&, int)> print = [&](const std::string& g,
                                                                 int depth) {
    const auto& node = il.hw_graph().groups().at(g);
    if (args.critical_only && !subtree_has_critical(g)) return;
    std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ') << "- " << g
              << (node.is_critical() ? " [critical]" : "") << "\n";
    for (const auto& c : il.hw_graph().children_of(g)) print(c, depth + 1);
  };
  for (const auto& root : il.hw_graph().roots()) print(root, 0);
  return 0;
}

int cmd_keys(const Args& args) {
  if (args.model_path.empty()) return usage();
  const core::IntelLog il = core::load_model_file(args.model_path);
  for (const auto& [id, ik] : il.intel_keys()) {
    std::cout << "[" << id << "] " << ik.key_text << "\n";
    if (!ik.entities.empty()) {
      std::cout << "    entities:";
      for (const auto& e : ik.entities) std::cout << " '" << e << "'";
      std::cout << "\n";
    }
    for (const auto& op : ik.operations) {
      std::cout << "    op {" << (op.subj.empty() ? "_" : op.subj) << ", " << op.predicate
                << ", " << (op.obj.empty() ? "_" : op.obj) << "}\n";
    }
  }
  return 0;
}

// Runs the streaming pipeline over a log directory with the full
// observability stack enabled and reports the metric snapshot — the
// operator's "where does time go / what is the detector seeing" view.
int cmd_stats(const Args& args) {
  if (args.logdir.empty() || args.model_path.empty()) return usage();
  ObsScope obs_scope(args, /*force_metrics=*/true);
  obs::MetricsRegistry& reg = obs_scope.registry();

  const core::IntelLog il = core::load_model_file(args.model_path);
  il.record_model_metrics(reg);
  const auto sessions = logparse::read_log_directory(args.logdir);

  // Route every record through the streaming detector so the per-record
  // consume-latency histogram and session gauges are populated too.
  const obs::ScopedTimerMs wall(&reg.histogram("intellog_stats_wall_ms"));
  core::OnlineDetector online(il, args.jobs);
  for (const auto& s : sessions) {
    for (const auto& rec : s.records) online.consume(rec);
  }
  std::size_t anomalous = 0;
  for (const auto& report : online.close_all()) anomalous += report.anomalous();
  const double wall_ms = wall.elapsed_ms();

  if (args.json) {
    std::cout << reg.to_json().dump(2) << "\n";
    return 0;
  }

  const auto counter = [&](const char* name, const obs::Labels& labels = {}) -> std::uint64_t {
    const obs::Counter* c = reg.find_counter(name, labels);
    return c ? c->value() : 0;
  };
  const auto gauge = [&](const char* name) -> std::int64_t {
    const obs::Gauge* g = reg.find_gauge(name);
    return g ? g->value() : 0;
  };
  const std::uint64_t records = counter("intellog_online_records_total");
  std::cout << "model:   " << gauge("intellog_model_log_keys") << " log keys, "
            << gauge("intellog_model_intel_keys") << " Intel Keys, "
            << gauge("intellog_model_entity_groups") << " entity groups, HW-graph "
            << gauge("intellog_model_graph_nodes") << " nodes / "
            << gauge("intellog_model_graph_edges") << " edges ("
            << gauge("intellog_model_critical_groups") << " critical, "
            << gauge("intellog_model_subroutines") << " subroutines)\n";
  std::cout << "stream:  " << records << " records in " << sessions.size() << " sessions; "
            << anomalous << " anomalous\n";
  std::cout << "         " << counter("intellog_online_unexpected_total")
            << " unexpected messages, " << counter("intellog_detect_issues_total")
            << " structural issues\n";
  if (const obs::Histogram* h = reg.find_histogram("intellog_online_consume_us");
      h && h->count() > 0) {
    std::cout << "latency: consume avg " << h->sum() / static_cast<double>(h->count())
              << " us/record over " << h->count() << " records\n";
  }
  if (wall_ms > 0 && records > 0) {
    std::cout << "rate:    " << static_cast<std::uint64_t>(
                                    static_cast<double>(records) / (wall_ms / 1000.0))
              << " records/s (" << wall_ms << " ms wall)\n";
  }
  return 0;
}

// Workflow Observatory: HW-graph instances as span trees. The Chrome trace
// goes to -o (stdout when omitted); --otlp adds the OTLP-style document.
int cmd_export_trace(const Args& args) {
  if (args.logdir.empty() || args.model_path.empty()) return usage();
  const core::IntelLog il = core::load_model_file(args.model_path);
  const auto sessions = logparse::read_log_directory(args.logdir);
  if (sessions.empty()) {
    std::cerr << "no parseable .log files found in " << args.logdir << "\n";
    return 1;
  }

  const common::Json chrome = obs::hwgraph_chrome_trace(il, sessions);
  if (args.output_path.empty()) {
    std::cout << chrome.dump(2) << "\n";
  } else {
    obs::write_json_atomic(chrome, args.output_path);
    std::cerr << "chrome trace (" << chrome["traceEvents"].size() << " events, "
              << sessions.size() << " sessions) -> " << args.output_path << "\n";
  }
  if (!args.otlp_path.empty()) {
    const common::Json otlp = obs::hwgraph_otlp_json(il, sessions);
    obs::write_json_atomic(otlp, args.otlp_path);
    std::cerr << "otlp trace -> " << args.otlp_path << "\n";
  }
  return 0;
}

// Workflow Observatory: renders every finding as an expected-vs-observed
// diff backed by raw log lines with provenance. The positional argument is
// either a saved `detect --json` report (round-trips without the logs) or
// a log directory (detect runs first).
int cmd_explain(const Args& args) {
  if (args.logdir.empty()) return usage();

  std::vector<core::AnomalyReport> reports;
  if (std::filesystem::is_regular_file(args.logdir)) {
    std::ifstream in(args.logdir);
    std::ostringstream buf;
    buf << in.rdbuf();
    const common::Json doc = common::Json::parse(buf.str());
    if (doc.is_array()) {
      for (const auto& j : doc.as_array()) reports.push_back(core::report_from_json(j));
    } else {
      reports.push_back(core::report_from_json(doc));
    }
  } else {
    if (args.model_path.empty()) return usage();
    const core::IntelLog il = core::load_model_file(args.model_path);
    const auto sessions = logparse::read_log_directory(args.logdir);
    for (auto& report : il.detect_batch(sessions, args.jobs)) {
      if (report.anomalous()) reports.push_back(std::move(report));
    }
  }

  std::size_t anomalous = 0;
  if (args.json) {
    common::Json arr = common::Json::array();
    for (const auto& report : reports) {
      if (!report.anomalous()) continue;
      ++anomalous;
      arr.push_back(report.to_json());
    }
    std::cout << arr.dump(2) << "\n";
  } else {
    bool first = true;
    for (const auto& report : reports) {
      const std::string text = core::render_explanation(report);
      if (text.empty()) continue;
      ++anomalous;
      if (!first) std::cout << "\n";
      first = false;
      std::cout << text;
    }
    if (anomalous == 0) std::cout << "no anomalies to explain\n";
  }
  return anomalous > 0 ? 3 : 0;
}

// Workflow Observatory: one-shot renderer for a --status-file snapshot, or
// (--connect) for the /status.json a --listen admin plane publishes live.
int cmd_top(const Args& args) {
  if (!args.connect.empty()) {
    const auto [host, port] = obs::http::split_host_port(args.connect);
    const auto fetched = obs::http::http_get(host, port, "/status.json", args.timeout_ms);
    if (!fetched) {
      std::cerr << "error: cannot reach http://" << args.connect << "/status.json within "
                << args.timeout_ms << "ms\n";
      return 2;
    }
    if (fetched->status != 200) {
      std::cerr << "error: /status.json returned " << fetched->status << "\n";
      return 1;
    }
    std::cout << obs::render_top(common::Json::parse(fetched->body));
    return 0;
  }
  if (args.logdir.empty()) return usage();  // positional: the status file
  std::ifstream in(args.logdir);
  if (!in) {
    std::cerr << "error: cannot read " << args.logdir << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::cout << obs::render_top(common::Json::parse(buf.str()));
  return 0;
}

// Orchestrator-facing probe: GET /readyz and fold the answer into an exit
// code (0 ready, 1 degraded, 2 unreachable/unrecognizable) — the shape
// container health checks and process supervisors want.
int cmd_healthcheck(const Args& args) {
  if (args.logdir.empty()) return usage();  // positional: HOST:PORT
  const auto [host, port] = obs::http::split_host_port(args.logdir);
  const auto fetched = obs::http::http_get(host, port, "/readyz", args.timeout_ms);
  if (!fetched) {
    std::cerr << "unreachable: http://" << args.logdir << "/readyz (timeout "
              << args.timeout_ms << "ms)\n";
    return 2;
  }
  if (fetched->status == 200) {
    std::cout << "ready\n";
    return 0;
  }
  if (fetched->status == 503) {
    std::cout << "degraded\n";
    try {
      const common::Json doc = common::Json::parse(fetched->body);
      for (const auto& r : doc["reasons"].as_array()) {
        std::cout << "  " << r.as_string() << "\n";
      }
    } catch (const std::exception&) {
      // body was not the expected JSON; the 503 alone already says degraded
    }
    return 1;
  }
  std::cerr << "unexpected /readyz status " << fetched->status << "\n";
  return 2;
}

int cmd_query(const Args& args) {
  if (args.logdir.empty() || args.model_path.empty() || args.query_text.empty()) return usage();
  const core::IntelLog il = core::load_model_file(args.model_path);
  const core::Query query = core::Query::parse(args.query_text);

  core::MessageStore store;
  for (const auto& session : logparse::read_log_directory(args.logdir)) {
    store.add_all(il.to_intel_messages(session));
    // Unexpected messages are structured on the fly (§4.2) so the
    // case-study GroupBy/query workflow covers them too.
    for (auto& u : il.detect(session).unexpected) store.add(std::move(u.message));
  }
  const auto hits = store.query([&](const core::IntelMessage& m) { return query.matches(m); });
  if (args.json) {
    common::Json arr = common::Json::array();
    for (const auto* m : hits) arr.push_back(m->to_json());
    std::cout << arr.dump(2) << "\n";
  } else {
    for (const auto* m : hits) {
      std::cout << m->container_id << " t=" << m->timestamp_ms << " key=" << m->key_id;
      for (const auto& iv : m->identifiers) std::cout << " " << iv.type << "=" << iv.value;
      for (const auto& loc : m->localities) std::cout << " @" << loc;
      std::cout << "\n";
    }
    std::cout << hits.size() << " / " << store.size() << " messages matched\n";
  }
  return 0;
}

// `intellog serve <root>`: the multi-tenant daemon. Every subdirectory of
// <root> is a tenant spool; the daemon runs until SIGTERM/SIGINT (graceful
// drain), --max-ticks, or --drain-on-empty fires. Per-tenant anomaly
// reports, shed ledgers and quarantine ledgers append inside each tenant
// directory; checkpoints make a kill at any point resumable.
int cmd_serve(const Args& args) {
  if (args.logdir.empty()) return usage();
  ObsScope obs_scope(args, /*force_metrics=*/true);

  serve::ServeOptions opt;
  opt.root = args.logdir;
  opt.model_path = args.model_path;
  opt.jobs = args.jobs != 0 ? args.jobs
                            : std::max<std::size_t>(2, std::thread::hardware_concurrency());
  opt.poll_ms = args.poll_ms;
  opt.checkpoint_every_ticks = args.checkpoint_ticks;
  opt.heartbeat_timeout_ms = args.heartbeat_ms;
  opt.metrics_interval_s = static_cast<std::uint64_t>(args.metrics_interval_s);
  opt.max_ticks = args.max_ticks;
  opt.kill_after_ticks = args.kill_after_ticks;
  opt.drain_on_empty = args.drain_on_empty;
  opt.status_path = args.status_path;
  opt.metrics_path = args.metrics_path;
  opt.alert_rules_path = args.alert_rules_path;
  opt.listen = args.listen;
  opt.blackbox = args.blackbox;
  opt.shard.quotas.max_records_per_tick = args.records_per_tick;
  opt.shard.quotas.max_backlog_files = args.backlog_files;
  opt.shard.quotas.max_file_bytes = args.max_file_bytes;
  opt.shard.breaker.open_ticks = args.breaker_open_ticks;

  serve::ServeDaemon daemon(opt);
  std::cerr << "serving " << daemon.tenants().size() << " tenant(s) under " << args.logdir
            << " with " << opt.jobs << " worker(s)\n";
  const serve::ServeSummary summary = daemon.run();

  std::cerr << "serve: " << summary.ticks << " tick(s), " << summary.checkpoints_written
            << " checkpoint(s)";
  if (summary.checkpoints_corrupt != 0) {
    std::cerr << ", " << summary.checkpoints_corrupt << " corrupt checkpoint(s) set aside";
  }
  std::cerr << "\n";
  for (const auto& [tenant, acc] : summary.tenants) {
    std::cerr << "  " << tenant << ": " << acc.records_admitted << " records, "
              << acc.sessions_closed << " sessions (" << acc.sessions_anomalous
              << " anomalous), " << acc.lines_quarantined << " quarantined, "
              << acc.files_shed << " shed, breaker "
              << summary.breaker_states.at(tenant);
    const auto rit = summary.restarts.find(tenant);
    if (rit != summary.restarts.end() && rit->second != 0) {
      std::cerr << ", " << rit->second << " restart(s)";
    }
    std::cerr << "\n";
  }
  return summary.stop_signal != 0 ? 128 + summary.stop_signal : 0;
}

// `intellog flight decode <blackbox.bin> [--json|--trace]` — post-mortem
// reader for the flight recorder's crash/drain dumps. Parsed outside the
// shared Args machinery because its --trace is a flag (output goes to
// stdout), not the path-valued --trace every other command takes.
int cmd_flight(int argc, char** argv) {
  if (argc < 3 || std::string(argv[2]) != "decode") return usage();
  std::string path;
  bool json = false, trace = false;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") json = true;
    else if (a == "--trace") trace = true;
    else if (!a.empty() && a[0] != '-' && path.empty()) path = a;
    else return usage();
  }
  if (path.empty() || (json && trace)) return usage();

  const obs::flight::FlightDump dump = obs::flight::decode_flight_file(path);
  if (json) {
    std::cout << obs::flight::flight_dump_json(dump).dump(2) << "\n";
  } else if (trace) {
    std::cout << obs::flight_chrome_trace(dump).dump() << "\n";
  } else {
    std::cout << obs::flight::render_flight_text(dump);
  }
  return 0;
}

int run_command(const Args& args) {
  // The profiler brackets the whole command; ProfileSession is declared
  // first so it is destroyed last, after every command-local thread pool
  // has been joined (the shadow-stack quiescence invariant).
  std::unique_ptr<ProfileSession> prof;
  if (!args.profile_path.empty()) prof = std::make_unique<ProfileSession>(args.profile_path);

  int rc = 2;
  if (args.command == "train") rc = cmd_train(args);
  else if (args.command == "detect") rc = cmd_detect(args);
  else if (args.command == "stats") rc = cmd_stats(args);
  else if (args.command == "graph") rc = cmd_graph(args);
  else if (args.command == "keys") rc = cmd_keys(args);
  else if (args.command == "query") rc = cmd_query(args);
  else if (args.command == "quarantine") rc = cmd_quarantine(args);
  else if (args.command == "coverage") rc = cmd_coverage(args);
  else if (args.command == "diff-model") rc = cmd_diff_model(args);
  else if (args.command == "score") rc = cmd_score(args);
  else if (args.command == "export-trace") rc = cmd_export_trace(args);
  else if (args.command == "explain") rc = cmd_explain(args);
  else if (args.command == "top") rc = cmd_top(args);
  else if (args.command == "healthcheck") rc = cmd_healthcheck(args);
  else if (args.command == "serve") rc = cmd_serve(args);
  else return usage();

  if (prof) prof->finish();
  return rc;
}

// `intellog profile [-o <prefix>] <cmd> [args...]` — runs any subcommand
// under the sampling profiler, equivalent to adding `--profile <prefix>`.
int cmd_profile_wrapper(int argc, char** argv) {
  std::string prefix = "intellog.prof";
  int start = 2;
  if (start + 1 < argc && std::string(argv[start]) == "-o") {
    prefix = argv[start + 1];
    start += 2;
  }
  if (start >= argc) return usage();
  std::vector<char*> shifted;
  shifted.push_back(argv[0]);
  for (int i = start; i < argc; ++i) shifted.push_back(argv[i]);
  Args args;
  if (!parse_args(static_cast<int>(shifted.size()), shifted.data(), args)) return usage();
  if (args.command == "profile") return usage();  // one session at a time
  args.profile_path = prefix;
  return run_command(args);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "profile") return cmd_profile_wrapper(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "flight") return cmd_flight(argc, argv);
    Args args;
    if (!parse_args(argc, argv, args)) return usage();
    return run_command(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
