#!/usr/bin/env python3
"""Diff two BENCH_*.json harness snapshots and gate on tolerances.

The bench harness writes one JSON document per bench binary: a few
top-level numbers (throughput_per_s, median_ms, ...) plus an "extra"
object of named scalars. This tool prints every numeric metric the two
snapshots share — baseline, fresh, and the fresh/baseline ratio — then
applies the gates given on the command line:

  --ratio-min KEY=BOUND   fresh[KEY] / baseline[KEY] >= BOUND
                          (top-level key; regression gate, e.g.
                           throughput_per_s=0.70 allows a 30% drop)
  --extra-min KEY=BOUND   fresh.extra[KEY] >= BOUND
  --extra-max KEY=BOUND   fresh.extra[KEY] <= BOUND
                          (absolute gates on self-relative measurements
                           such as the interleaved overhead ratios, which
                           need no baseline to be meaningful)
  --extra-range KEY=LO:HI LO <= fresh.extra[KEY] <= HI
                          (two-sided gate for noise-floor measurements
                           such as profiler_disabled_ratio, which must
                           straddle 1.00 for the one-sided overhead
                           gates to be trustworthy)
  --extra-ratio-min NUM/DEN=BOUND
                          fresh.extra[NUM] / fresh.extra[DEN] >= BOUND
                          (self-relative gate between two fresh metrics
                           measured in the same run — e.g. the mmap
                           ingest path vs the getline path it replaced —
                           so machine speed cancels out and no baseline
                           entry is needed)

A gated --extra-* key absent from the fresh snapshot is skipped with a
note: older bench binaries simply don't emit newer ratios, and the gate
should not fail a bisect through them. A --ratio-min key missing from
either file is an error — the headline numbers are load-bearing.

Exit 0 when every applicable gate holds, 1 on the first violation,
2 on usage errors.
"""

import argparse
import json
import sys


def numeric_items(doc, prefix=""):
    """Flatten one level: top-level numbers plus extra.* numbers."""
    out = {}
    for key, value in doc.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[prefix + key] = float(value)
        elif key == "extra" and isinstance(value, dict):
            out.update(numeric_items(value, "extra."))
    return out


def parse_gate_raw(spec):
    key, sep, bound = spec.partition("=")
    if not sep or not key:
        print(f"compare_bench: bad gate spec {spec!r} (want KEY=BOUND)", file=sys.stderr)
        sys.exit(2)
    return key, bound


def parse_gate(spec):
    key, bound = parse_gate_raw(spec)
    try:
        return key, float(bound)
    except ValueError:
        print(f"compare_bench: non-numeric bound in {spec!r}", file=sys.stderr)
        sys.exit(2)


def parse_ratio_gate(spec):
    key, bound = parse_gate(spec)
    num, sep, den = key.partition("/")
    if not sep or not num or not den:
        print(f"compare_bench: bad ratio spec {spec!r} (want NUM/DEN=BOUND)", file=sys.stderr)
        sys.exit(2)
    return num, den, bound


def parse_range_gate(spec):
    key, bounds = parse_gate_raw(spec)
    lo, sep, hi = bounds.partition(":")
    if not sep:
        print(f"compare_bench: bad range spec {spec!r} (want KEY=LO:HI)", file=sys.stderr)
        sys.exit(2)
    try:
        lo, hi = float(lo), float(hi)
    except ValueError:
        print(f"compare_bench: non-numeric bound in {spec!r}", file=sys.stderr)
        sys.exit(2)
    if lo > hi:
        print(f"compare_bench: empty range in {spec!r} (LO > HI)", file=sys.stderr)
        sys.exit(2)
    return key, lo, hi


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--ratio-min", action="append", default=[], metavar="KEY=BOUND")
    ap.add_argument("--extra-min", action="append", default=[], metavar="KEY=BOUND")
    ap.add_argument("--extra-max", action="append", default=[], metavar="KEY=BOUND")
    ap.add_argument("--extra-range", action="append", default=[], metavar="KEY=LO:HI")
    ap.add_argument("--extra-ratio-min", action="append", default=[], metavar="NUM/DEN=BOUND")
    args = ap.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        base_doc = json.load(f)
    with open(args.fresh, encoding="utf-8") as f:
        fresh_doc = json.load(f)
    base = numeric_items(base_doc)
    fresh = numeric_items(fresh_doc)

    name = base_doc.get("bench") or fresh_doc.get("bench") or "bench"
    print(f"compare_bench: {name}")
    for key in sorted(set(base) | set(fresh)):
        b, f = base.get(key), fresh.get(key)
        if b is None or f is None:
            side = "fresh" if b is None else "baseline"
            value = f if b is None else b
            print(f"  {key:<34} only in {side}: {value:.6g}")
        elif b != 0:
            print(f"  {key:<34} {b:>14.6g} -> {f:>14.6g}  ({f / b:.3f}x)")
        else:
            print(f"  {key:<34} {b:>14.6g} -> {f:>14.6g}")

    failures = []
    for spec in args.ratio_min:
        key, bound = parse_gate(spec)
        if key not in base or key not in fresh:
            failures.append(f"{key}: missing from "
                            f"{'baseline' if key not in base else 'fresh'} snapshot")
            continue
        if base[key] == 0:
            failures.append(f"{key}: baseline is zero, ratio undefined")
            continue
        ratio = fresh[key] / base[key]
        ok = ratio >= bound
        print(f"  gate {key}: {ratio:.3f}x of baseline (need >= {bound:g}) "
              f"{'OK' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"{key}: {ratio:.3f}x of baseline, below {bound:g}")

    for specs, op in ((args.extra_min, ">="), (args.extra_max, "<=")):
        for spec in specs:
            key, bound = parse_gate(spec)
            value = fresh.get(f"extra.{key}")
            if value is None:
                print(f"  gate {key}: not emitted by this bench build, skipped")
                continue
            ok = value >= bound if op == ">=" else value <= bound
            print(f"  gate {key}: {value:.3f} (need {op} {bound:g}) "
                  f"{'OK' if ok else 'FAIL'}")
            if not ok:
                failures.append(f"{key}: {value:.3f} violates {op} {bound:g}")

    for spec in args.extra_ratio_min:
        num, den, bound = parse_ratio_gate(spec)
        num_v = fresh.get(f"extra.{num}")
        den_v = fresh.get(f"extra.{den}")
        if num_v is None or den_v is None:
            print(f"  gate {num}/{den}: not emitted by this bench build, skipped")
            continue
        if den_v == 0:
            failures.append(f"{num}/{den}: denominator is zero, ratio undefined")
            continue
        ratio = num_v / den_v
        ok = ratio >= bound
        print(f"  gate {num}/{den}: {ratio:.3f} (need >= {bound:g}) "
              f"{'OK' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"{num}/{den}: {ratio:.3f}, below {bound:g}")

    for spec in args.extra_range:
        key, lo, hi = parse_range_gate(spec)
        value = fresh.get(f"extra.{key}")
        if value is None:
            print(f"  gate {key}: not emitted by this bench build, skipped")
            continue
        ok = lo <= value <= hi
        print(f"  gate {key}: {value:.3f} (need {lo:g}..{hi:g}) "
              f"{'OK' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"{key}: {value:.3f} outside [{lo:g}, {hi:g}]")

    if failures:
        for f in failures:
            print(f"compare_bench: FAIL — {f}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
