// chaos_soak — end-to-end robustness gate for the ingestion + detection path.
//
//   chaos_soak [--seed S] [--intensity p] [--workdir dir] [--jobs N] [--keep]
//
// One soak run, fully deterministic in --seed:
//   1. generate a clean spark dataset (simsys), train a model on it,
//   2. corrupt the dataset with LogStreamCorruptor (every fault kind on),
//   3. resilient-ingest the corrupted logs and check the hard invariants:
//        - ingest accounting balances (no line silently vanishes),
//        - nothing byte-identical to an intact original line is quarantined,
//        - detection runs to completion over the surviving sessions,
//   4. duplicates-only parity: with only re-delivery faults enabled, the
//      deduped record stream — and every anomaly report — must be
//      byte-identical to the clean run's,
//   5. kill-and-resume: consume half the corrupted stream, checkpoint, drop
//      the detector, restore from the file, consume the rest; the
//      concatenated report JSON must be byte-identical to an uninterrupted
//      run,
//   6. bounded state: with hard Limits and no explicit closes, the live
//      session/record caps must hold at every step (evictions flagged
//      degraded).
//
// Exit 0 when every invariant holds; 1 with a "CHAOS VIOLATION" line per
// failure otherwise. tools/ci.sh runs three seeds under ASan/UBSan.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/intellog.hpp"
#include "core/online.hpp"
#include "logparse/formatter.hpp"
#include "logparse/log_io.hpp"
#include "simsys/corruptor.hpp"
#include "simsys/workload.hpp"

using namespace intellog;

namespace {

int usage() {
  std::cerr << "usage: chaos_soak [--seed S] [--intensity p] [--workdir dir]"
               " [--jobs N] [--keep]\n";
  return 2;
}

bool g_failed = false;

void check(bool ok, const std::string& what) {
  if (ok) return;
  g_failed = true;
  std::cerr << "CHAOS VIOLATION: " << what << "\n";
}

std::string dump_reports(const std::vector<core::AnomalyReport>& reports) {
  std::string out;
  for (const auto& r : reports) {
    out += r.to_json().dump();
    out += '\n';
  }
  return out;
}

/// Streams every record of `sessions` through an OnlineDetector, closing
/// each session at its boundary, optionally checkpointing + "crashing" +
/// restoring at record `kill_at` (0 = uninterrupted). Returns the emitted
/// reports in order.
std::vector<core::AnomalyReport> stream_detect(const core::IntelLog& model,
                                               const std::vector<logparse::Session>& sessions,
                                               std::size_t kill_at,
                                               const std::string& ckpt_path) {
  std::vector<core::AnomalyReport> reports;
  auto online = std::make_unique<core::OnlineDetector>(model);
  std::size_t idx = 0;
  for (const auto& s : sessions) {
    for (const auto& rec : s.records) {
      online->consume(rec);
      if (++idx == kill_at) {
        online->checkpoint_file(ckpt_path);
        online.reset();  // the "crash": all in-memory state gone
        online = std::make_unique<core::OnlineDetector>(
            core::OnlineDetector::restore_file(model, ckpt_path));
      }
    }
    if (auto r = online->close_session(s.container_id)) reports.push_back(std::move(*r));
  }
  for (auto& r : online->close_all()) reports.push_back(std::move(r));
  return reports;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  double intensity = 0.02;
  std::size_t gen_jobs = 3;
  std::string workdir;
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) std::exit(usage());
      return argv[++i];
    };
    if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--intensity") intensity = std::stod(next());
    else if (arg == "--workdir") workdir = next();
    else if (arg == "--jobs") gen_jobs = std::stoul(next());
    else if (arg == "--keep") keep = true;
    else return usage();
  }
  if (workdir.empty()) {
    workdir = (std::filesystem::temp_directory_path() /
               ("intellog_chaos_" + std::to_string(seed)))
                  .string();
  }
  std::filesystem::remove_all(workdir);
  const std::string clean_dir = workdir + "/clean";
  const std::string corrupt_dir = workdir + "/corrupt";
  const std::string dup_dir = workdir + "/dup_only";
  const std::string ckpt_path = workdir + "/checkpoint.json";

  // --- 1. clean dataset + model --------------------------------------------
  const simsys::ClusterSpec cluster;
  simsys::WorkloadGenerator gen("spark", seed);
  const auto fmt = logparse::make_spark_formatter();
  for (std::size_t j = 0; j < gen_jobs; ++j) {
    const simsys::JobResult result = simsys::run_job(gen.training_job(), cluster, {});
    logparse::write_log_directory(*fmt, result.sessions,
                                  clean_dir + "/job_" + std::to_string(j));
  }
  const auto clean = logparse::read_log_directory_resilient(clean_dir);
  check(!clean.sessions.empty(), "clean dataset produced no sessions");
  core::IntelLog model;
  model.train(clean.sessions);

  // --- 2. corrupt (every fault kind) ---------------------------------------
  simsys::LogStreamCorruptor corruptor(simsys::CorruptionSpec::all(intensity), seed);
  const auto provenance = corruptor.corrupt_directory(clean_dir, corrupt_dir);
  std::map<std::string, const simsys::LogStreamCorruptor::Result*> by_stem;
  for (const auto& [stem, result] : provenance) by_stem[stem] = &result;
  std::cerr << "corruptor: " << corruptor.stats().to_json().dump() << "\n";

  // --- 3. resilient ingest of the corrupted stream -------------------------
  const auto corrupted = logparse::read_log_directory_resilient(corrupt_dir);
  const logparse::IngestStats& st = corrupted.stats;
  check(st.records + st.continuations + st.quarantined + st.duplicates_dropped ==
            st.lines_total,
        "ingest accounting does not balance: " + std::to_string(st.records) + " records + " +
            std::to_string(st.continuations) + " continuations + " +
            std::to_string(st.quarantined) + " quarantined + " +
            std::to_string(st.duplicates_dropped) + " deduped != " +
            std::to_string(st.lines_total) + " lines");
  // Intact lines parse cleanly, so the quarantine channel must only ever
  // hold mutated or injected lines (origin == -1 in the provenance map).
  for (const auto& q : corrupted.quarantined) {
    const std::string stem = std::filesystem::path(q.file).stem().string();
    const auto it = by_stem.find(stem);
    if (it == by_stem.end()) {
      check(false, "quarantined line from unknown stream " + q.file);
      continue;
    }
    const auto& origin = it->second->origin;
    if (q.line_no == 0 || q.line_no > origin.size()) {
      check(false, "quarantine line_no out of range: " + q.file + ":" +
                       std::to_string(q.line_no));
      continue;
    }
    check(origin[q.line_no - 1] == -1,
          "intact original line quarantined (" + q.reason + "): " + q.file + ":" +
              std::to_string(q.line_no));
  }

  // Detection must run to completion over whatever survived.
  std::size_t anomalous = 0;
  try {
    for (const auto& r : model.detect_batch(corrupted.sessions, 1)) {
      anomalous += r.anomalous();
    }
  } catch (const std::exception& e) {
    check(false, std::string("detection threw on corrupted input: ") + e.what());
  }

  // --- 4. duplicates-only parity -------------------------------------------
  // Re-delivery is the one fault kind the hardened path must fully undo:
  // with only duplicate_p enabled, the deduped record stream and every
  // report must be byte-identical to the clean run's.
  {
    simsys::CorruptionSpec dup_spec;
    dup_spec.duplicate_p = intensity * 4;
    simsys::LogStreamCorruptor dup(dup_spec, seed);
    dup.corrupt_directory(clean_dir, dup_dir);
    const auto dup_ingest = logparse::read_log_directory_resilient(dup_dir);
    check(dup.stats().duplicated > 0, "duplicates-only corruptor injected nothing");
    check(dup_ingest.stats.quarantined == 0, "duplicates-only stream quarantined lines");
    // corrupt_directory flattens the job_*/ layout, so compare by container
    // id rather than directory-scan order.
    const auto by_container = [](const std::vector<logparse::Session>& sessions) {
      std::map<std::string, const logparse::Session*> m;
      for (const auto& s : sessions) m[s.container_id] = &s;
      return m;
    };
    const auto clean_by_id = by_container(clean.sessions);
    const auto dup_by_id = by_container(dup_ingest.sessions);
    bool records_equal = clean_by_id.size() == dup_by_id.size();
    for (const auto& [id, cs] : clean_by_id) {
      if (!records_equal) break;
      const auto it = dup_by_id.find(id);
      if (it == dup_by_id.end()) {
        records_equal = false;
        break;
      }
      const auto& a = cs->records;
      const auto& b = it->second->records;
      records_equal = a.size() == b.size();
      for (std::size_t k = 0; records_equal && k < a.size(); ++k) {
        records_equal = a[k].timestamp_ms == b[k].timestamp_ms &&
                        a[k].content == b[k].content && a[k].level == b[k].level;
      }
    }
    check(records_equal, "deduped record stream differs from the clean stream");
    std::string clean_dump, dup_dump;
    for (const auto& [id, s] : clean_by_id) clean_dump += model.detect(*s).to_json().dump() + "\n";
    for (const auto& [id, s] : dup_by_id) dup_dump += model.detect(*s).to_json().dump() + "\n";
    check(clean_dump == dup_dump,
          "reports over the deduped stream differ from the clean reports");
  }

  // --- 5. kill-and-resume --------------------------------------------------
  std::size_t total_records = 0;
  for (const auto& s : corrupted.sessions) total_records += s.records.size();
  const auto uninterrupted = stream_detect(model, corrupted.sessions, 0, ckpt_path);
  const auto resumed = stream_detect(model, corrupted.sessions, total_records / 2, ckpt_path);
  check(dump_reports(uninterrupted) == dump_reports(resumed),
        "kill-and-resume final report is not byte-identical to the uninterrupted run");

  // --- 6. bounded state under no-close overload ----------------------------
  {
    core::OnlineDetector::Limits limits;
    limits.max_sessions = 4;
    limits.max_buffered_records = 2000;
    core::OnlineDetector bounded(model, 1, limits);
    std::size_t evicted = 0;
    bool caps_held = true, degraded_flagged = true;
    for (const auto& s : corrupted.sessions) {
      for (const auto& rec : s.records) {
        bounded.consume(rec);
        caps_held = caps_held && bounded.open_sessions().size() <= limits.max_sessions &&
                    bounded.total_buffered_records() <= limits.max_buffered_records;
      }
      for (const auto& r : bounded.take_evicted()) {
        ++evicted;
        degraded_flagged = degraded_flagged && r.degraded_reason == "lru";
      }
    }
    check(caps_held, "session/record caps exceeded during overload");
    check(evicted > 0, "overload produced no evictions (caps not exercised)");
    check(degraded_flagged, "evicted report missing degraded_reason=lru");
    bounded.close_all();
  }

  std::cerr << "soak seed=" << seed << ": " << st.lines_total << " corrupted lines -> "
            << st.records << " records, " << st.quarantined << " quarantined, "
            << st.duplicates_dropped << " deduped, " << anomalous << " / "
            << corrupted.sessions.size() << " sessions anomalous\n";
  if (!keep) std::filesystem::remove_all(workdir);
  if (g_failed) {
    std::cerr << "CHAOS SOAK FAILED (seed " << seed << ")\n";
    return 1;
  }
  std::cerr << "chaos soak passed (seed " << seed << ")\n";
  return 0;
}
